//! Bounded MPMC work queue with explicit, all-or-nothing admission.
//!
//! Backpressure is a *frame*, not a stall: a request whose cells don't all
//! fit is refused atomically ([`BoundedQueue::try_push_all`]) and the
//! client told to come back ([`crate::wire`]'s RETRY_AFTER), instead of a
//! connection handler blocking on a full queue while holding a socket.
//! The supervisor's crash requeues use [`BoundedQueue::push_unbounded`]:
//! work that was *already admitted* must never be shed by its own retry.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of a [`BoundedQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed *and drained* — the worker should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex+Condvar bounded queue (std has no bounded channel).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits every item or none: if the batch would exceed capacity (or
    /// the queue is closed), the whole batch comes back untouched and the
    /// caller sheds the request. One lock acquisition — two racing
    /// admissions cannot interleave into a half-admitted request.
    pub fn try_push_all(&self, batch: Vec<T>) -> Result<(), Vec<T>> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() + batch.len() > self.capacity {
            return Err(batch);
        }
        inner.items.extend(batch);
        drop(inner);
        self.ready.notify_all();
        Ok(())
    }

    /// Enqueues past the capacity bound (and even past `close`): the
    /// supervisor's requeue of a crashed shard's task. The task was
    /// admitted once; its retry must not be shed, and a drain must still
    /// answer it.
    pub fn push_unbounded(&self, item: T) {
        self.inner.lock().expect("queue lock").items.push_back(item);
        self.ready.notify_one();
    }

    /// Waits up to `timeout` for an item. After [`BoundedQueue::close`],
    /// pops keep draining queued items and report [`Popped::Closed`] only
    /// once empty — admitted work completes through a drain.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (next, result) = self.ready.wait_timeout(inner, timeout).expect("queue lock");
            inner = next;
            if result.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if inner.closed => Popped::Closed,
                    None => Popped::TimedOut,
                };
            }
        }
    }

    /// Refuses all further admissions and wakes every waiting worker.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        assert!(q.try_push_all(vec![1, 2]).is_ok());
        let refused = q.try_push_all(vec![3, 4]).expect_err("would overflow");
        assert_eq!(refused, vec![3, 4]);
        assert_eq!(q.len(), 2, "refused batch left no residue");
        assert!(q.try_push_all(vec![3]).is_ok());
    }

    #[test]
    fn unbounded_push_ignores_capacity_and_close() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push_all(vec![1]).is_ok());
        q.push_unbounded(2);
        q.close();
        q.push_unbounded(3);
        assert!(q.try_push_all(vec![4]).is_err(), "closed refuses admission");
        let t = Duration::from_millis(10);
        assert_eq!(q.pop(t), Popped::Item(1));
        assert_eq!(q.pop(t), Popped::Item(2));
        assert_eq!(q.pop(t), Popped::Item(3));
        assert_eq!(q.pop(t), Popped::Closed);
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push_unbounded(7u32);
        assert_eq!(h.join().unwrap(), Popped::Item(7));
        assert_eq!(q.pop(Duration::from_millis(5)), Popped::TimedOut);
    }
}
