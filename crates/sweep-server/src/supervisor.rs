//! Worker shards and the supervisor that keeps them alive.
//!
//! A shard is one thread owning one `SimScratch`. It does **not**
//! `catch_unwind`: a panic (injected by net-chaos, or real) kills the
//! thread, and the scratch — possibly poisoned mid-simulation — dies with
//! it. The supervisor polls its shards, joins the corpse, requeues the
//! task the shard had published to its slot (attempt + 1, exponential
//! backoff), and spawns a replacement with a *fresh* scratch. A task that
//! exhausts its retries is answered as a `panic` failure — data, not an
//! outage. This is the same poisoned-scratch-disposal discipline as the
//! sweep pool's `run_batch_guarded`, expressed at thread granularity.

use crate::queue::Popped;
use crate::{failure_reply, Shared, Task};
use experiments::wire::{CellReply, CellStatus};
use experiments::{encode_outcome, CellOutcome, Checkpointer};
use sim_core::SimScratch;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One supervised worker.
struct Shard {
    handle: JoinHandle<()>,
    /// The task the shard is currently executing — what the supervisor
    /// recovers if the shard dies. `None` between tasks.
    slot: Arc<Mutex<Option<Task>>>,
}

fn spawn_shard(shared: Arc<Shared>, serial: u64) -> Shard {
    let slot: Arc<Mutex<Option<Task>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let handle = std::thread::Builder::new()
        .name(format!("shard-{serial}"))
        .spawn(move || worker_loop(&shared, &slot2))
        .expect("spawn shard");
    Shard { handle, slot }
}

fn worker_loop(shared: &Arc<Shared>, slot: &Arc<Mutex<Option<Task>>>) {
    // Fresh scratch per shard incarnation: a respawn after a panic never
    // reuses state the dying simulation may have poisoned.
    let mut scratch = SimScratch::new();
    loop {
        let task = match shared.queue.pop(Duration::from_millis(200)) {
            Popped::Item(t) => t,
            Popped::TimedOut => continue,
            Popped::Closed => return,
        };
        *slot.lock().expect("slot lock") = Some(task.clone());
        // Execution-time store re-check: keeps "each distinct cell
        // simulates at most once" true even across the admission races
        // (a delivery landing between a request's store probe and its
        // inflight registration).
        if let Some(reply) = crate::store_lookup(shared, &task.cell, &task.key) {
            *slot.lock().expect("slot lock") = None;
            shared.deliver(task.key.hash(), reply);
            continue;
        }
        if let Some(plan) = shared.chaos {
            if plan.worker_panic(task.key.hash(), task.attempt) {
                shared
                    .counters
                    .injected_panics
                    .fetch_add(1, Ordering::Relaxed);
                // Escapes on purpose: the supervisor's restart path is the
                // thing under test. The slot still holds the task.
                panic!("net-chaos: injected worker panic on {}", task.cell);
            }
        }
        // With a checkpoint interval configured, the cell snapshots at
        // every slice boundary and resumes from the newest verified
        // snapshot for its key — left behind by a deadline abort, possibly
        // in a previous server incarnation on the same store directory.
        let ckpt = shared
            .ckpt_interval
            .map(|iv| Checkpointer::new(Arc::clone(&shared.store), task.key.clone(), iv));
        let (outcome, resumed) = shared.ctx.run_cell_checkpointed(
            &task.cell,
            &mut scratch,
            task.deadline,
            ckpt.as_ref(),
        );
        if resumed {
            shared.counters.resumed.fetch_add(1, Ordering::Relaxed);
        }
        let reply = conclude(shared, &task, outcome);
        *slot.lock().expect("slot lock") = None;
        shared.deliver(task.key.hash(), reply);
    }
}

/// Turns a finished cell into its wire reply, persisting successes.
fn conclude(shared: &Arc<Shared>, task: &Task, outcome: CellOutcome) -> CellReply {
    match outcome {
        Ok(run) => {
            let digest = run.result.stats_digest();
            if let Some(store) = shared.store.lock().expect("store lock").as_mut() {
                let payload = encode_outcome(&run);
                if let Err(e) = store.put(&task.key, &payload, digest) {
                    eprintln!("[sweep-server] store write failed for {}: {e}", task.cell);
                }
            }
            shared.counters.computed.fetch_add(1, Ordering::Relaxed);
            CellReply {
                workload: run.workload.clone(),
                slug: task.cell.kind.slug().to_string(),
                status: CellStatus::Computed,
                cycles: run.result.stats.cycles,
                retired: run.result.stats.retired,
                stats_digest: digest,
                fail_kind: String::new(),
                detail: String::new(),
            }
        }
        Err(f) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            match f.kind {
                "watchdog" => {
                    shared
                        .counters
                        .watchdog_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                "deadline" => {
                    shared
                        .counters
                        .deadline_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            failure_reply(&task.cell, f.kind, f.detail)
        }
    }
}

/// Spawns `shards` workers plus the supervisor thread that owns them.
/// The supervisor exits once the queue is closed, fully drained, and every
/// shard has retired cleanly.
pub fn spawn(shared: Arc<Shared>, shards: usize) -> JoinHandle<()> {
    let n = shards.max(1);
    std::thread::Builder::new()
        .name("supervisor".into())
        .spawn(move || supervise(&shared, n))
        .expect("spawn supervisor")
}

fn supervise(shared: &Arc<Shared>, n: usize) {
    let mut serial: u64 = 0;
    let mut spawn_next = |shared: &Arc<Shared>| {
        serial += 1;
        spawn_shard(Arc::clone(shared), serial)
    };
    let mut shards: Vec<Shard> = (0..n).map(|_| spawn_next(shared)).collect();
    // Crash requeues being back-off-delayed; released when due.
    let mut delayed: Vec<(Instant, Task)> = Vec::new();
    loop {
        let now = Instant::now();
        delayed.retain(|(due, task)| {
            if *due <= now {
                shared.queue.push_unbounded(task.clone());
                false
            } else {
                true
            }
        });

        let mut alive = Vec::with_capacity(shards.len());
        for shard in shards {
            if !shard.handle.is_finished() {
                alive.push(shard);
                continue;
            }
            match shard.handle.join() {
                Ok(()) => {} // clean retirement (queue closed + drained)
                Err(payload) => {
                    shared
                        .counters
                        .shard_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    let msg = panic_text(payload.as_ref());
                    if let Some(task) = shard.slot.lock().expect("slot lock").take() {
                        let attempt = task.attempt + 1;
                        if attempt > shared.max_retries {
                            // Retries exhausted: the cell is answered as a
                            // failure datum, in CellFailure vocabulary.
                            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                            shared.deliver(
                                task.key.hash(),
                                failure_reply(
                                    &task.cell,
                                    "panic",
                                    format!(
                                        "worker panicked {attempt} time(s), retries exhausted: \
                                         {msg}"
                                    ),
                                ),
                            );
                        } else {
                            // Exponential backoff: 50ms, 100ms, 200ms, …
                            let backoff = Duration::from_millis(25u64 << attempt.min(6));
                            delayed.push((Instant::now() + backoff, Task { attempt, ..task }));
                        }
                    }
                    // Replace the dead shard (fresh scratch) — even during
                    // a drain: its requeued task still needs a worker.
                    alive.push(spawn_next(shared));
                }
            }
        }
        shards = alive;

        if shards.is_empty() {
            let closed = shared.queue_closed.load(Ordering::SeqCst);
            if closed && delayed.is_empty() && shared.queue.is_empty() {
                return;
            }
            // Work still exists (a requeue landed after every shard
            // retired): bring one back.
            shards.push(spawn_next(shared));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Best-effort panic payload rendering (same shape as the sweep pool's).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
