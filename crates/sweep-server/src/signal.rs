//! SIGTERM-triggered graceful drain, without libc.
//!
//! The toolchain has no signal crate, so on x86_64 Linux this module
//! speaks to the kernel directly: `rt_sigprocmask(2)` blocks SIGTERM
//! process-wide **before any thread spawns** (spawned threads inherit the
//! mask, so the default terminate disposition can never fire), and a
//! watcher thread polls `rt_sigtimedwait(2)` to *consume* a pending
//! SIGTERM synchronously — no async-signal-safety minefield, just a bool.
//!
//! On any other platform both calls are no-ops and the portable drain
//! path (the wire-level SHUTDOWN frame) is the only trigger.

#![allow(clippy::missing_safety_doc)]

use std::time::Duration;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use std::time::Duration;

    const SYS_RT_SIGPROCMASK: u64 = 14;
    const SYS_RT_SIGTIMEDWAIT: u64 = 128;
    const SIG_BLOCK: u64 = 0;
    const SIGTERM: u64 = 15;
    /// Kernel sigset_t is a plain 64-bit mask on x86_64.
    const SIGSET_SIZE: u64 = 8;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    unsafe fn syscall4(nr: u64, a: u64, b: u64, c: u64, d: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as i64 => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn block_sigterm() -> bool {
        let mask: u64 = 1 << (SIGTERM - 1);
        let rc = unsafe {
            syscall4(
                SYS_RT_SIGPROCMASK,
                SIG_BLOCK,
                &mask as *const u64 as u64,
                0, // oldset: don't care
                SIGSET_SIZE,
            )
        };
        rc == 0
    }

    pub fn wait_sigterm(poll: Duration) -> bool {
        let mask: u64 = 1 << (SIGTERM - 1);
        let ts = Timespec {
            tv_sec: poll.as_secs() as i64,
            tv_nsec: i64::from(poll.subsec_nanos()),
        };
        let rc = unsafe {
            syscall4(
                SYS_RT_SIGTIMEDWAIT,
                &mask as *const u64 as u64,
                0, // siginfo: don't care
                &ts as *const Timespec as u64,
                SIGSET_SIZE,
            )
        };
        // Positive return is the consumed signal number; -EAGAIN (timeout)
        // and -EINTR both mean "nothing consumed, poll again".
        rc == SIGTERM as i64
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use std::time::Duration;

    pub fn block_sigterm() -> bool {
        false
    }

    pub fn wait_sigterm(poll: Duration) -> bool {
        // No signal machinery: just provide the polling cadence.
        std::thread::sleep(poll);
        false
    }
}

/// Blocks SIGTERM for this thread and every thread spawned after. Returns
/// `false` (and changes nothing) on unsupported platforms. Call first
/// thing in `main`.
pub fn block_sigterm() -> bool {
    imp::block_sigterm()
}

/// Waits up to `poll` for a blocked SIGTERM and consumes it. `true` means
/// a SIGTERM arrived — begin the drain. Only meaningful after
/// [`block_sigterm`] returned `true`.
pub fn wait_sigterm(poll: Duration) -> bool {
    imp::wait_sigterm(poll)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn blocked_sigterm_is_consumed_not_fatal() {
        // `block_sigterm` masks only the calling thread (the binary calls
        // it before spawning, so children inherit) — so the signal must be
        // aimed at THIS thread with tgkill, not at the process, or the
        // kernel may deliver it to an unblocked test-harness thread.
        unsafe fn syscall3(nr: u64, a: u64, b: u64, c: u64) -> i64 {
            let ret: i64;
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") a, in("rsi") b, in("rdx") c,
                lateout("rcx") _, lateout("r11") _,
                options(nostack),
            );
            ret
        }
        const SYS_GETTID: u64 = 186;
        const SYS_TGKILL: u64 = 234;
        assert!(block_sigterm(), "rt_sigprocmask failed");
        let tgid = u64::from(std::process::id());
        let tid = unsafe { syscall3(SYS_GETTID, 0, 0, 0) } as u64;
        let rc = unsafe { syscall3(SYS_TGKILL, tgid, tid, 15) };
        assert_eq!(rc, 0, "tgkill failed");
        let got = (0..50).any(|_| wait_sigterm(Duration::from_millis(100)));
        assert!(got, "pending SIGTERM was not consumed");
    }

    #[test]
    fn wait_times_out_quietly_when_nothing_is_pending() {
        block_sigterm();
        let started = std::time::Instant::now();
        assert!(!wait_sigterm(Duration::from_millis(50)));
        assert!(started.elapsed() >= Duration::from_millis(40));
    }
}
