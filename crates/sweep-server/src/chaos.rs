//! Deterministic wire-level and worker fault injection.
//!
//! A [`NetChaosPlan`] is a pure function of its seed, like the sweep
//! engine's `ChaosPlan` and the store's `IoChaosPlan`:
//!
//! * **wire faults** are keyed `(seed, connection id)` — each connection
//!   draws at most *one* scheduled fault (torn frame, disconnect, stall,
//!   corrupt byte) at a drawn frame index, so a retrying client makes
//!   progress: every reconnect is a fresh draw, roughly a third of which
//!   are clean, and cells answered before the fault land in the store;
//! * **worker panics** are keyed `(seed, cell key hash, attempt)` and are
//!   only ever scheduled for attempt 0 — a supervised retry of the same
//!   cell always runs clean, which is what makes "every request is
//!   eventually answered" a theorem of the plan rather than luck.
//!
//! The same seed therefore produces the same faults on the same
//! connection/cell schedule, and a CI soak either always passes or always
//! fails — never flakes.

/// One scheduled wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Write a prefix of the frame, then drop the connection — the peer
    /// sees a torn frame (`UnexpectedEof` mid-frame).
    TornFrame,
    /// Drop the connection before the frame — the peer sees a clean EOF
    /// where a frame was due.
    Disconnect,
    /// Stall mid-stream for a few hundred milliseconds, then continue —
    /// exercises read timeouts without killing the stream.
    Stall,
    /// Flip one payload byte — the peer's checksum rejects the frame.
    CorruptByte,
}

/// Where in a connection's outgoing frame stream its fault (if any) fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFault {
    pub fault: NetFault,
    /// 0-based index into the frames the server writes on this connection.
    pub frame_index: u64,
}

/// Seeded, deterministic chaos schedule for the server.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosPlan {
    seed: u64,
}

// splitmix64: the same tiny mixer the sweep/store chaos plans use.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl NetChaosPlan {
    pub fn new(seed: u64) -> Self {
        NetChaosPlan { seed }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The single wire fault scheduled for `conn_id`, if any. Roughly 2/3
    /// of connections draw one; which frame it hits is drawn from the
    /// first 24 frames (early enough to fire on short streams too).
    pub fn wire_fault(&self, conn_id: u64) -> Option<WireFault> {
        let draw = mix(self.seed ^ mix(conn_id.wrapping_add(0xc0de)));
        if draw % 16 < 6 {
            return None; // clean connection
        }
        let fault = match (draw >> 8) % 4 {
            0 => NetFault::TornFrame,
            1 => NetFault::Disconnect,
            2 => NetFault::Stall,
            _ => NetFault::CorruptByte,
        };
        Some(WireFault {
            fault,
            frame_index: (draw >> 16) % 24,
        })
    }

    /// Whether the worker picking up `key_hash` on retry `attempt` should
    /// panic before simulating. Scheduled only at `attempt == 0`, for
    /// roughly 1/5 of cells — the supervised requeue always completes.
    pub fn worker_panic(&self, key_hash: u64, attempt: u32) -> bool {
        attempt == 0 && mix(self.seed ^ mix(key_hash)) % 16 < 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = NetChaosPlan::new(42);
        let b = NetChaosPlan::new(42);
        let c = NetChaosPlan::new(43);
        let fa: Vec<_> = (0..64).map(|id| a.wire_fault(id)).collect();
        let fb: Vec<_> = (0..64).map(|id| b.wire_fault(id)).collect();
        let fc: Vec<_> = (0..64).map(|id| c.wire_fault(id)).collect();
        assert_eq!(fa, fb);
        assert_ne!(fa, fc, "different seeds must differ somewhere in 64 draws");
    }

    #[test]
    fn some_connections_are_clean_and_some_faulty() {
        let plan = NetChaosPlan::new(7);
        let faulty = (0..256).filter(|&id| plan.wire_fault(id).is_some()).count();
        assert!(
            (64..=224).contains(&faulty),
            "fault rate drifted: {faulty}/256"
        );
    }

    #[test]
    fn worker_panics_never_survive_a_retry() {
        let plan = NetChaosPlan::new(99);
        let panicking = (0..256u64)
            .map(mix)
            .filter(|&k| plan.worker_panic(k, 0))
            .count();
        assert!(panicking > 10, "seed 99 schedules some panics: {panicking}");
        for k in (0..256u64).map(mix) {
            for attempt in 1..4 {
                assert!(!plan.worker_panic(k, attempt), "retries must run clean");
            }
        }
    }
}
