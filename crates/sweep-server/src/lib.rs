//! # sweep-server — a fault-tolerant job server for sweep cells
//!
//! A std-only threaded TCP server that executes the same (workload ×
//! machine) cells as the `experiments` sweep engine, one request at a
//! time, surviving everything the harness can throw at it:
//!
//! * requests arrive over the length-prefixed, checksummed frame protocol
//!   of [`experiments::wire`] and stream per-cell results back
//!   incrementally;
//! * identical in-flight cells are **deduped** by their stable result-store
//!   key (the same key `result-store` files them under), and repeats are
//!   answered **from the store** at warm-rerender speed;
//! * per-request **deadlines** ride into the simulator core
//!   ([`sim_core::Core::set_deadline`]); an expired cell is abandoned
//!   cleanly through the watchdog/quarantine path and returned as a
//!   failure *datum*, never a dropped connection;
//! * worker shards run under a **supervisor** ([`supervisor`]): a panicked
//!   shard is joined, its poisoned scratch discarded with the thread, its
//!   task requeued with exponential backoff (bounded retries, then a
//!   `CellFailure`-style reply), and a fresh shard spawned;
//! * the queue is **bounded** with all-or-nothing admission — overload is
//!   answered with a RETRY_AFTER frame, not a wedged accept loop — and
//!   idle/slow-client socket timeouts mean a slow-loris client costs one
//!   connection handler, never a worker;
//! * SIGTERM (or a SHUTDOWN frame) triggers a **graceful drain**: stop
//!   accepting, answer everything already admitted, flush the store, exit
//!   0/2/3 like the sweep binary;
//! * `--net-chaos <seed>` injects deterministic wire faults (torn frames,
//!   disconnects, stalls, corrupt bytes) and worker panics ([`chaos`]) so
//!   every recovery path above is exercised end to end in CI.

pub mod chaos;
pub mod queue;
pub mod signal;
pub mod supervisor;

use chaos::{NetChaosPlan, NetFault, WireFault};
use experiments::wire::{self, CellReply, CellStatus, Frame};
use experiments::{decode_outcome, CellSpec, JobContext, RunLength, SharedStore};
use queue::BoundedQueue;
use result_store::{GetOutcome, ResultStore, StoreKey};
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Error-frame codes the server emits.
pub mod error_code {
    /// HELLO carried a protocol version this build does not speak.
    pub const VERSION_SKEW: u16 = 1;
    /// Unknown figure id / workload / machine slug in a request.
    pub const BAD_REQUEST: u16 = 2;
    /// The server is draining and admits no new work.
    pub const DRAINING: u16 = 3;
    /// A frame arrived that makes no sense at this point of the dialogue.
    pub const PROTOCOL: u16 = 4;
}

/// Everything configurable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free one (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker shard count (each owns one `SimScratch`).
    pub shards: usize,
    /// Bounded queue capacity — the load-shedding threshold.
    pub queue_capacity: usize,
    /// Supervised retries per cell after worker panics, before the cell is
    /// answered as a `panic` failure.
    pub max_retries: u32,
    /// Instructions per cell.
    pub run_length: RunLength,
    /// Restrict the suite to its first N workloads (`None` = all 90).
    pub subset: Option<usize>,
    /// Persistent result store directory (opened *shared*: a concurrent
    /// `experiments --store-dir` CLI on the same directory is fine).
    pub store_dir: Option<PathBuf>,
    /// Storage-fault injection seed (requires `store_dir`).
    pub io_chaos: Option<u64>,
    /// Mid-run checkpoint interval in core loop iterations (requires
    /// `store_dir`). A deadline-aborted cell keeps its latest snapshot and
    /// the next request for it — including one served by the *next* server
    /// incarnation on the same directory — resumes instead of recomputing.
    pub ckpt_interval: Option<u64>,
    /// Wire/worker fault injection seed.
    pub net_chaos: Option<u64>,
    /// How long a connection may sit idle between frames before it is
    /// dropped (also the slow-loris bound on partial frames).
    pub idle_timeout: Duration,
    /// How long one outgoing write may stall before the client is dropped.
    pub write_timeout: Duration,
    /// Whether to install the raw-syscall SIGTERM watcher (the binary
    /// does; in-process tests drain via [`ServerHandle::drain`] instead).
    pub watch_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            queue_capacity: 256,
            max_retries: 3,
            run_length: RunLength::quick(),
            subset: None,
            store_dir: None,
            io_chaos: None,
            ckpt_interval: None,
            net_chaos: None,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            watch_sigterm: false,
        }
    }
}

/// Lifetime counters, snapshotted into the [`ExitReport`].
#[derive(Debug, Default)]
pub struct Counters {
    pub computed: AtomicU64,
    pub store_hits: AtomicU64,
    pub resumed: AtomicU64,
    pub failed: AtomicU64,
    pub watchdog_aborts: AtomicU64,
    pub deadline_aborts: AtomicU64,
    pub sheds: AtomicU64,
    pub shard_restarts: AtomicU64,
    pub injected_panics: AtomicU64,
    pub requests: AtomicU64,
    pub connections: AtomicU64,
}

/// What a drained server reports on exit.
#[derive(Debug, Clone)]
pub struct ExitReport {
    pub computed: u64,
    pub store_hits: u64,
    /// Cells that resumed from a mid-run checkpoint instead of starting
    /// over (deadline-aborted earlier, possibly by a previous server
    /// incarnation on the same store directory).
    pub resumed: u64,
    pub failed: u64,
    pub watchdog_aborts: u64,
    pub deadline_aborts: u64,
    pub sheds: u64,
    pub shard_restarts: u64,
    pub injected_panics: u64,
    pub requests: u64,
    pub connections: u64,
    /// Process exit code, sweep-compatible: 0 every cell clean, 2 failed
    /// cells were served, 3 at least one watchdog abort.
    pub exit_code: i32,
}

/// One queued unit of work. Cloned into the shard's published slot so the
/// supervisor can requeue it if the shard dies mid-cell.
#[derive(Debug, Clone)]
pub struct Task {
    pub cell: CellSpec,
    pub key: StoreKey,
    pub deadline: Option<Instant>,
    pub attempt: u32,
}

/// State shared by the accept loop, connection handlers, workers, and the
/// supervisor.
pub struct Shared {
    pub ctx: JobContext,
    pub queue: BoundedQueue<Task>,
    /// key hash → the reply senders of every request waiting on that cell.
    pub inflight: Mutex<HashMap<u64, Vec<mpsc::Sender<CellReply>>>>,
    pub store: SharedStore,
    /// Checkpoint interval for worker shards; `None` when the server has
    /// no store (a checkpoint without a place to live is a no-op).
    pub ckpt_interval: Option<u64>,
    pub chaos: Option<NetChaosPlan>,
    pub draining: AtomicBool,
    pub queue_closed: AtomicBool,
    pub active_requests: AtomicUsize,
    pub max_retries: u32,
    pub counters: Counters,
}

impl Shared {
    /// Removes the cell's waiter list and fans the reply out to all of
    /// them. A waiter whose connection died just drops the send.
    pub fn deliver(&self, key_hash: u64, reply: CellReply) {
        let waiters = self
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&key_hash)
            .unwrap_or_default();
        for w in waiters {
            let _ = w.send(reply.clone());
        }
    }

    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running server. Bind errors surface from [`Server::spawn`]; after
/// that, the server runs until drained.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    run: std::thread::JoinHandle<ExitReport>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Triggers a graceful drain, as SIGTERM or a SHUTDOWN frame would.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Access to the live counters (tests).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Waits for the drain to complete and returns the exit report.
    pub fn join(self) -> ExitReport {
        self.run.join().expect("server run loop panicked")
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds, spawns shards + supervisor (+ SIGTERM watcher if asked), and
    /// returns a handle. The caller decides process-level concerns (the
    /// binary blocks on [`ServerHandle::join`] and exits with the code).
    pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let specs = match cfg.subset {
            Some(k) => sim_workload::suite_subset(k),
            None => sim_workload::suite(),
        };
        let io_plan = cfg.io_chaos.map(result_store::IoChaosPlan::new);
        let store =
            match &cfg.store_dir {
                // Shared open: read-through, no healing, no LOCK — a CLI sweep
                // holding the exclusive lock on the same directory coexists.
                Some(dir) => Some(ResultStore::open_shared(dir, io_plan).map_err(|e| {
                    io::Error::new(e.kind(), format!("store {}: {e}", dir.display()))
                })?),
                None => None,
            };
        let shared = Arc::new(Shared {
            ctx: JobContext::new(specs, cfg.run_length),
            queue: BoundedQueue::new(cfg.queue_capacity),
            inflight: Mutex::new(HashMap::new()),
            ckpt_interval: cfg.ckpt_interval.filter(|_| store.is_some()),
            store: Arc::new(Mutex::new(store)),
            chaos: cfg.net_chaos.map(NetChaosPlan::new),
            draining: AtomicBool::new(false),
            queue_closed: AtomicBool::new(false),
            active_requests: AtomicUsize::new(0),
            max_retries: cfg.max_retries,
            counters: Counters::default(),
        });
        let supervisor = supervisor::spawn(Arc::clone(&shared), cfg.shards);
        if cfg.watch_sigterm {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigterm-watcher".into())
                .spawn(move || {
                    while !s.is_draining() {
                        if signal::wait_sigterm(Duration::from_millis(200)) {
                            eprintln!("[sweep-server] SIGTERM: draining");
                            s.begin_drain();
                        }
                    }
                })?;
        }
        let s = Arc::clone(&shared);
        let run = std::thread::Builder::new()
            .name("accept-loop".into())
            .spawn(move || run_loop(listener, s, supervisor, cfg))?;
        Ok(ServerHandle { addr, shared, run })
    }
}

fn run_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    supervisor: std::thread::JoinHandle<()>,
    cfg: ServerConfig,
) -> ExitReport {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut conn_id: u64 = 0;
    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                conn_id += 1;
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let s = Arc::clone(&shared);
                let c = cfg.clone();
                let id = conn_id;
                let _ = std::thread::Builder::new()
                    .name(format!("conn-{id}"))
                    .spawn(move || {
                        let _ = handle_connection(&s, stream, id, &c);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("[sweep-server] accept error: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    drop(listener); // stop accepting: refused, not queued

    // Drain: every admitted cell has an inflight entry; wait until all are
    // answered. No new admissions arrive (handlers check the drain flag),
    // so this strictly shrinks — modulo the benign race of a request that
    // passed the flag check just as it flipped, which simply extends the
    // wait until it, too, is answered.
    loop {
        let outstanding = shared.inflight.lock().expect("inflight lock").len();
        if outstanding == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // Give connection handlers a bounded moment to flush their streams
    // (the replies are already computed and stored; a stalled client's
    // write timeout caps this).
    let flush_deadline = Instant::now() + cfg.write_timeout + Duration::from_secs(2);
    while shared.active_requests.load(Ordering::SeqCst) > 0 && Instant::now() < flush_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    // Retire the shards and the supervisor.
    shared.queue_closed.store(true, Ordering::SeqCst);
    shared.queue.close();
    supervisor.join().expect("supervisor panicked");
    // Flush the store: dropping the handle closes the journal append
    // handle; every append was already written straight through, so the
    // journal is replayable by the next open.
    *shared.store.lock().expect("store lock") = None;

    let c = &shared.counters;
    let failed = c.failed.load(Ordering::Relaxed);
    let watchdog = c.watchdog_aborts.load(Ordering::Relaxed);
    ExitReport {
        computed: c.computed.load(Ordering::Relaxed),
        store_hits: c.store_hits.load(Ordering::Relaxed),
        resumed: c.resumed.load(Ordering::Relaxed),
        failed,
        watchdog_aborts: watchdog,
        deadline_aborts: c.deadline_aborts.load(Ordering::Relaxed),
        sheds: c.sheds.load(Ordering::Relaxed),
        shard_restarts: c.shard_restarts.load(Ordering::Relaxed),
        injected_panics: c.injected_panics.load(Ordering::Relaxed),
        requests: c.requests.load(Ordering::Relaxed),
        connections: c.connections.load(Ordering::Relaxed),
        exit_code: if watchdog > 0 {
            3
        } else if failed > 0 {
            2
        } else {
            0
        },
    }
}

/// Server-side frame writer that injects this connection's scheduled wire
/// fault (if any) at its drawn frame index.
struct ChaosWriter<'a> {
    stream: &'a TcpStream,
    fault: Option<WireFault>,
    frame_idx: u64,
}

impl<'a> ChaosWriter<'a> {
    fn new(stream: &'a TcpStream, fault: Option<WireFault>) -> Self {
        ChaosWriter {
            stream,
            fault,
            frame_idx: 0,
        }
    }

    fn write(&mut self, frame: &Frame) -> io::Result<()> {
        let idx = self.frame_idx;
        self.frame_idx += 1;
        let mut bytes = frame.encode();
        if let Some(wf) = self.fault {
            if wf.frame_index == idx {
                match wf.fault {
                    NetFault::TornFrame => {
                        let half = bytes.len() / 2;
                        let _ = (&mut self.stream).write_all(&bytes[..half]);
                        let _ = self.stream.shutdown(std::net::Shutdown::Both);
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "net-chaos: torn frame",
                        ));
                    }
                    NetFault::Disconnect => {
                        let _ = self.stream.shutdown(std::net::Shutdown::Both);
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "net-chaos: disconnect",
                        ));
                    }
                    NetFault::Stall => {
                        std::thread::sleep(Duration::from_millis(300));
                        // then write the frame intact
                    }
                    NetFault::CorruptByte => {
                        // Flip the checksum's last byte: the client's
                        // verifier must reject the frame, never misread it.
                        let last = bytes.len() - 1;
                        bytes[last] ^= 0x40;
                    }
                }
            }
        }
        (&mut self.stream).write_all(&bytes)?;
        (&mut self.stream).flush()
    }
}

fn handle_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    conn_id: u64,
    cfg: &ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(cfg.idle_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_nodelay(true).ok();
    let fault = shared.chaos.and_then(|p| p.wire_fault(conn_id));
    let mut reader = &stream;
    let mut writer = ChaosWriter::new(&stream, fault);
    match wire::read_frame(&mut reader)? {
        Frame::Hello { proto } if proto == wire::PROTO_VERSION => {
            writer.write(&Frame::HelloAck {
                proto: wire::PROTO_VERSION,
            })?;
        }
        Frame::Hello { proto } => {
            writer.write(&Frame::Error {
                code: error_code::VERSION_SKEW,
                message: format!(
                    "server speaks protocol {}, not {proto}",
                    wire::PROTO_VERSION
                ),
            })?;
            return Ok(());
        }
        _ => {
            writer.write(&Frame::Error {
                code: error_code::PROTOCOL,
                message: "expected HELLO".to_string(),
            })?;
            return Ok(());
        }
    }
    loop {
        let frame = match wire::read_frame(&mut reader) {
            Ok(f) => f,
            // Clean close, idle timeout, or garbage: drop the connection.
            Err(_) => return Ok(()),
        };
        match frame {
            Frame::Ping { token } => writer.write(&Frame::Pong { token })?,
            Frame::Shutdown => {
                eprintln!("[sweep-server] SHUTDOWN frame: draining");
                shared.begin_drain();
                return Ok(());
            }
            req @ (Frame::Job { .. } | Frame::Figure { .. } | Frame::Sweep { .. }) => {
                if shared.is_draining() {
                    writer.write(&Frame::Error {
                        code: error_code::DRAINING,
                        message: "server is draining".to_string(),
                    })?;
                    return Ok(());
                }
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                shared.active_requests.fetch_add(1, Ordering::SeqCst);
                let out = handle_request(shared, &mut writer, req);
                shared.active_requests.fetch_sub(1, Ordering::SeqCst);
                out?;
                if shared.is_draining() {
                    // Don't let an idle keep-alive connection outlive the
                    // drain window.
                    return Ok(());
                }
            }
            _ => {
                writer.write(&Frame::Error {
                    code: error_code::PROTOCOL,
                    message: "unexpected frame".to_string(),
                })?;
            }
        }
    }
}

/// Expands the request into cells, answers what the store already holds,
/// dedupes against in-flight work, admits the rest (all or nothing), then
/// streams replies as they complete.
fn handle_request(
    shared: &Arc<Shared>,
    writer: &mut ChaosWriter<'_>,
    req: Frame,
) -> io::Result<()> {
    let (cells, deadline_ms) = match expand_request(shared, &req) {
        Ok(pair) => pair,
        Err(message) => {
            return writer.write(&Frame::Error {
                code: error_code::BAD_REQUEST,
                message,
            });
        }
    };
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));

    let mut ready: Vec<CellReply> = Vec::new(); // answered before any queueing
    let mut to_compute: Vec<(CellSpec, StoreKey)> = Vec::new();
    let mut seen = HashSet::new();
    for cell in cells {
        if !seen.insert((cell.workload.clone(), cell.kind.slug())) {
            continue; // same cell twice in one request
        }
        let Some(key) = shared.ctx.store_key_for(&cell) else {
            ready.push(failure_reply(
                &cell,
                "panic",
                format!("unresolvable workload {:?}", cell.workload),
            ));
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        if let Some(reply) = store_lookup(shared, &cell, &key) {
            ready.push(reply);
            continue;
        }
        to_compute.push((cell, key));
    }

    // Admission: register waiters and enqueue new tasks under the inflight
    // lock, so a concurrent delivery can't slip between "join this entry"
    // and "push its task". All-or-nothing: a refused batch registers
    // nothing and the whole request is shed.
    let (tx, rx) = mpsc::channel::<CellReply>();
    let expected = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let mut new_tasks = Vec::new();
        let mut creates: Vec<u64> = Vec::new();
        let mut joins = Vec::new();
        for (cell, key) in &to_compute {
            let hash = key.hash();
            if inflight.contains_key(&hash) || creates.contains(&hash) {
                joins.push(hash);
            } else {
                creates.push(hash);
                new_tasks.push(Task {
                    cell: cell.clone(),
                    key: key.clone(),
                    deadline,
                    attempt: 0,
                });
            }
        }
        if shared.queue.try_push_all(new_tasks).is_err() {
            drop(inflight);
            shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
            return writer.write(&Frame::RetryAfter { millis: 250 });
        }
        for hash in &creates {
            inflight.insert(*hash, vec![tx.clone()]);
        }
        for hash in &joins {
            inflight
                .get_mut(hash)
                .expect("joined entry exists")
                .push(tx.clone());
        }
        creates.len() + joins.len()
    };
    drop(tx);

    // Stream: store/failure answers first, then computed cells in
    // completion order.
    let mut totals = (0u32, 0u32, 0u32); // computed, from_store, failed
    let bump = |c: &CellReply, totals: &mut (u32, u32, u32)| match c.status {
        CellStatus::Computed => totals.0 += 1,
        CellStatus::FromStore => totals.1 += 1,
        CellStatus::Failed => totals.2 += 1,
    };
    for c in &ready {
        bump(c, &mut totals);
        writer.write(&Frame::Cell(c.clone()))?;
    }
    for _ in 0..expected {
        // Generous bound: every admitted task is answered by a worker or
        // the supervisor; this cap only breaks a truly wedged server.
        match rx.recv_timeout(Duration::from_secs(600)) {
            Ok(c) => {
                bump(&c, &mut totals);
                writer.write(&Frame::Cell(c))?;
            }
            Err(_) => {
                return writer.write(&Frame::Error {
                    code: error_code::PROTOCOL,
                    message: "server lost a cell (wedge guard)".to_string(),
                });
            }
        }
    }
    writer.write(&Frame::Done {
        total: totals.0 + totals.1 + totals.2,
        computed: totals.0,
        from_store: totals.1,
        failed: totals.2,
    })
}

/// Request frame → flat cell list (+ deadline), or a BAD_REQUEST message.
fn expand_request(shared: &Arc<Shared>, req: &Frame) -> Result<(Vec<CellSpec>, u32), String> {
    match req {
        Frame::Job {
            workload,
            slug,
            deadline_ms,
        } => {
            let Some(kind) = experiments::MachineKind::from_slug(slug) else {
                return Err(format!("unknown machine slug {slug:?}"));
            };
            if shared.ctx.resolve(workload).is_none() {
                return Err(format!("unknown workload {workload:?}"));
            }
            Ok((vec![CellSpec::new(workload.clone(), kind)], *deadline_ms))
        }
        Frame::Figure { id, deadline_ms } => {
            match experiments::figure_cells(id, shared.ctx.specs()) {
                Some(cells) => Ok((cells, *deadline_ms)),
                None => Err(format!(
                    "figure {id:?} is not a (workload x machine) matrix this server can expand"
                )),
            }
        }
        Frame::Sweep { deadline_ms } => {
            Ok((experiments::sweep_cells(shared.ctx.specs()), *deadline_ms))
        }
        _ => Err("not a request frame".to_string()),
    }
}

/// Store probe at admission and again at execution time (the cell may
/// have landed in the store between the two — another process, or an
/// earlier attempt whose client vanished). `None` = miss (or no store).
pub(crate) fn store_lookup(
    shared: &Arc<Shared>,
    cell: &CellSpec,
    key: &StoreKey,
) -> Option<CellReply> {
    let mut guard = shared.store.lock().expect("store lock");
    let store = guard.as_mut()?;
    match store.get(key) {
        GetOutcome::Hit {
            payload,
            stats_digest,
        } => match decode_outcome(&payload) {
            Ok(outcome) => {
                shared.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                Some(CellReply {
                    workload: cell.workload.clone(),
                    slug: cell.kind.slug().to_string(),
                    status: CellStatus::FromStore,
                    cycles: outcome.result.stats.cycles,
                    retired: outcome.result.stats.retired,
                    stats_digest,
                    fail_kind: String::new(),
                    detail: String::new(),
                })
            }
            Err(_) => None, // undecodable payload: recompute (and overwrite)
        },
        // Miss, or a defect the store already quarantined: recompute.
        GetOutcome::Miss | GetOutcome::Defect(_) => None,
    }
}

/// A `Failed` reply for a cell, in the CellFailure vocabulary.
pub(crate) fn failure_reply(cell: &CellSpec, kind: &str, detail: String) -> CellReply {
    CellReply {
        workload: cell.workload.clone(),
        slug: cell.kind.slug().to_string(),
        status: CellStatus::Failed,
        cycles: 0,
        retired: 0,
        stats_digest: 0,
        fail_kind: kind.to_string(),
        detail,
    }
}
