//! Static and dynamic instruction definitions.

use crate::{AddrMode, ArchReg, Pc};

/// A memory operand: `[base + index*scale + disp]`, or RIP-relative.
///
/// RIP-relative references resolve to a fixed virtual address (`disp` holds
/// the absolute target), matching how compilers address global-scope data —
/// the dominant source of PC-relative global-stable loads (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<ArchReg>,
    /// Index register, if any.
    pub index: Option<ArchReg>,
    /// Scale applied to the index register (1, 2, 4, or 8).
    pub scale: u8,
    /// Displacement; the absolute address for RIP-relative references.
    pub disp: i64,
    /// Whether this is a RIP-relative reference.
    pub rip_relative: bool,
}

impl MemRef {
    /// RIP-relative reference to the absolute address `addr`.
    pub fn rip(addr: u64) -> Self {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i64,
            rip_relative: true,
        }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: ArchReg, disp: i64) -> Self {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            rip_relative: false,
        }
    }

    /// `[base + index*scale + disp]`.
    pub fn base_index(base: ArchReg, index: ArchReg, scale: u8, disp: i64) -> Self {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            rip_relative: false,
        }
    }

    /// The addressing-mode class of this reference (§4.1.1).
    ///
    /// Stack-relative means RSP or RBP is the *only* source register.
    pub fn addr_mode(&self) -> AddrMode {
        if self.rip_relative {
            AddrMode::PcRelative
        } else if self.index.is_none() && self.base.is_some_and(|b| b.is_stack_reg()) {
            AddrMode::StackRelative
        } else {
            AddrMode::RegRelative
        }
    }

    /// The architectural registers this reference reads to form its address.
    pub fn addr_regs(&self) -> impl Iterator<Item = ArchReg> {
        self.base.into_iter().chain(self.index)
    }

    /// Computes the effective address given a register-read function.
    pub fn effective_addr(&self, read: impl Fn(ArchReg) -> u64) -> u64 {
        if self.rip_relative {
            return self.disp as u64;
        }
        let base = self.base.map_or(0, &read);
        let index = self
            .index
            .map_or(0, &read)
            .wrapping_mul(u64::from(self.scale));
        base.wrapping_add(index).wrapping_add(self.disp as u64)
    }
}

/// Arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    Div,
}

impl AluOp {
    /// Evaluates the operation. Division by zero yields `u64::MAX`
    /// (the generator never emits a trapping divide).
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
        }
    }
}

/// Condition codes for conditional branches (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondCode {
    Eq,
    Ne,
    Lt,
    Ge,
    Gt,
    Le,
}

impl CondCode {
    /// Evaluates the condition on two operands (treated as signed).
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (a, b) = (a as i64, b as i64);
        match self {
            CondCode::Eq => a == b,
            CondCode::Ne => a != b,
            CondCode::Lt => a < b,
            CondCode::Ge => a >= b,
            CondCode::Gt => a > b,
            CondCode::Le => a <= b,
        }
    }
}

/// Control-flow instruction kinds.
///
/// `Call`/`Ret` are modeled with a shadow return-address stack (as a modern
/// core's RAS + stack engine would service them) rather than explicit memory
/// µops, so they do not pollute load statistics; frame setup (`sub rsp, N`)
/// is emitted explicitly by the program generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch: compare `srcs[0]` against `srcs[1]`
    /// (or the immediate when no second source), branch to `target` if true.
    Cond { cc: CondCode, target: u32 },
    /// Unconditional direct jump (a branch-folding candidate, §8.1).
    Jump { target: u32 },
    /// Indirect jump: target PC is the value of `srcs[0]`.
    Indirect,
    /// Direct call; pushes the return PC on the shadow stack.
    Call { target: u32 },
    /// Return; pops the shadow stack.
    Ret,
}

/// The operation performed by a static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Memory load into `dst`.
    Load { mem: MemRef, size: u8 },
    /// Memory store of `srcs[0]`.
    Store { mem: MemRef, size: u8 },
    /// ALU operation `dst = op(srcs[0], srcs[1] or imm)`.
    Alu(AluOp),
    /// Address computation `dst = &mem` (never touches memory).
    Lea(MemRef),
    /// Load immediate: `dst = imm` (constant-folding candidate).
    MovImm,
    /// Register move `dst = srcs[0]` (move-elimination candidate).
    Mov,
    /// Control flow.
    Branch(BranchKind),
    /// No operation.
    Nop,
}

/// Functional-unit class; determines which issue ports can execute the µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    Alu,
    Mul,
    Div,
    Load,
    Store,
    Branch,
    /// Register move / immediate — executable on any ALU port, and often
    /// eliminated at rename.
    Move,
    Nop,
}

/// One static instruction of a generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    /// This instruction's PC.
    pub pc: Pc,
    /// What it does.
    pub kind: OpKind,
    /// Data source registers (`None` slots unused). Memory address registers
    /// live in the [`MemRef`], not here.
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Immediate operand (ALU second operand, branch comparison value, …).
    pub imm: i64,
}

impl StaticInst {
    /// A new instruction at static index `idx`.
    pub fn new(idx: u32, kind: OpKind) -> Self {
        StaticInst {
            pc: Pc::from_index(idx),
            kind,
            srcs: [None, None],
            dst: None,
            imm: 0,
        }
    }

    /// Builder-style source registers.
    pub fn with_srcs(mut self, a: Option<ArchReg>, b: Option<ArchReg>) -> Self {
        self.srcs = [a, b];
        self
    }

    /// Builder-style destination register.
    pub fn with_dst(mut self, dst: ArchReg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Builder-style immediate.
    pub fn with_imm(mut self, imm: i64) -> Self {
        self.imm = imm;
        self
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, OpKind::Load { .. })
    }

    /// Whether this is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, OpKind::Store { .. })
    }

    /// Whether this is any control-flow instruction.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, OpKind::Branch(_))
    }

    /// The memory operand, if this instruction has one.
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match &self.kind {
            OpKind::Load { mem, .. } | OpKind::Store { mem, .. } | OpKind::Lea(mem) => Some(mem),
            _ => None,
        }
    }

    /// Addressing mode of the memory operand, if any.
    pub fn addr_mode(&self) -> Option<AddrMode> {
        self.mem_ref().map(MemRef::addr_mode)
    }

    /// Functional-unit class.
    pub fn class(&self) -> InstClass {
        match self.kind {
            OpKind::Load { .. } => InstClass::Load,
            OpKind::Store { .. } => InstClass::Store,
            OpKind::Alu(AluOp::Mul) => InstClass::Mul,
            OpKind::Alu(AluOp::Div) => InstClass::Div,
            OpKind::Alu(_) | OpKind::Lea(_) => InstClass::Alu,
            OpKind::MovImm | OpKind::Mov => InstClass::Move,
            OpKind::Branch(_) => InstClass::Branch,
            OpKind::Nop => InstClass::Nop,
        }
    }

    /// Every architectural register this instruction reads, including
    /// memory-address registers. These are the registers the RMT must watch
    /// for a load (Condition 1, §5).
    pub fn all_src_regs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        let mem_regs = self.mem_ref().into_iter().flat_map(MemRef::addr_regs);
        self.srcs.iter().flatten().copied().chain(mem_regs)
    }

    /// Whether this is a zero idiom (`xor r, r` or `mov r, 0`) that the
    /// baseline's zero-elimination optimization removes at rename (§8.1).
    pub fn is_zero_idiom(&self) -> bool {
        match self.kind {
            OpKind::Alu(AluOp::Xor) => self.srcs[0].is_some() && self.srcs[0] == self.srcs[1],
            OpKind::MovImm => self.imm == 0,
            _ => false,
        }
    }
}

/// A dynamic memory access captured by the functional executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective virtual address.
    pub addr: u64,
    /// Value loaded or stored.
    pub value: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// One dynamic (functionally executed) instruction instance.
///
/// The cycle-accurate model is trace-driven: it consumes `DynInst` records
/// for timing, and the retire stage's *golden check* (§8.5) compares the
/// microarchitecturally produced address/value of every load — including
/// Constable-eliminated ones — against these functional outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Global dynamic sequence number (correct path only).
    pub seq: u64,
    /// Index of the static instruction.
    pub sidx: u32,
    /// PC of this instance.
    pub pc: Pc,
    /// Correct-path next PC (the branch outcome for branches).
    pub next_pc: Pc,
    /// Branch outcome; `false` for non-branches.
    pub taken: bool,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Value written to the destination register (0 when no destination).
    pub dst_value: u64,
}

impl DynInst {
    /// The load access, if this dynamic instance is a load.
    ///
    /// The caller must know the static kind; this helper just unwraps `mem`.
    pub fn mem_access(&self) -> Option<MemAccess> {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rip_references_are_pc_relative() {
        let m = MemRef::rip(0x60_0000);
        assert_eq!(m.addr_mode(), AddrMode::PcRelative);
        assert_eq!(
            m.effective_addr(|_| panic!("no registers involved")),
            0x60_0000
        );
    }

    #[test]
    fn rsp_and_rbp_bases_are_stack_relative() {
        assert_eq!(
            MemRef::base_disp(ArchReg::RSP, 0x14).addr_mode(),
            AddrMode::StackRelative
        );
        assert_eq!(
            MemRef::base_disp(ArchReg::RBP, -8).addr_mode(),
            AddrMode::StackRelative
        );
        // An indexed stack access is *not* stack-relative per the paper's
        // definition (RSP/RBP must be the only source register).
        assert_eq!(
            MemRef::base_index(ArchReg::RSP, ArchReg::RAX, 8, 0).addr_mode(),
            AddrMode::RegRelative
        );
    }

    #[test]
    fn effective_addr_combines_base_index_scale_disp() {
        let m = MemRef::base_index(ArchReg::R11, ArchReg::RAX, 8, 0x10);
        let read = |r: ArchReg| match r {
            ArchReg::R11 => 0x1000,
            ArchReg::RAX => 3,
            _ => 0,
        };
        assert_eq!(m.effective_addr(read), 0x1000 + 3 * 8 + 0x10);
    }

    #[test]
    fn negative_displacement_wraps_correctly() {
        let m = MemRef::base_disp(ArchReg::RBP, -16);
        assert_eq!(m.effective_addr(|_| 0x8000), 0x8000 - 16);
    }

    #[test]
    fn zero_idiom_detection() {
        let xor = StaticInst::new(0, OpKind::Alu(AluOp::Xor))
            .with_srcs(Some(ArchReg::RAX), Some(ArchReg::RAX))
            .with_dst(ArchReg::RAX);
        assert!(xor.is_zero_idiom());

        let movz = StaticInst::new(1, OpKind::MovImm).with_dst(ArchReg::RCX);
        assert!(movz.is_zero_idiom());

        let xor2 = StaticInst::new(2, OpKind::Alu(AluOp::Xor))
            .with_srcs(Some(ArchReg::RAX), Some(ArchReg::RCX))
            .with_dst(ArchReg::RAX);
        assert!(!xor2.is_zero_idiom());
    }

    #[test]
    fn all_src_regs_includes_address_registers() {
        let st = StaticInst::new(
            0,
            OpKind::Store {
                mem: MemRef::base_index(ArchReg::R14, ArchReg::RDI, 1, 0),
                size: 8,
            },
        )
        .with_srcs(Some(ArchReg::R8), None);
        let regs: Vec<_> = st.all_src_regs().collect();
        assert_eq!(regs, vec![ArchReg::R8, ArchReg::R14, ArchReg::RDI]);
    }

    #[test]
    fn alu_ops_evaluate() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX); // wrapping
        assert_eq!(AluOp::Div.eval(10, 0), u64::MAX); // non-trapping
        assert_eq!(AluOp::Shl.eval(1, 65), 2); // masked shift
    }

    #[test]
    fn cond_codes_are_signed() {
        assert!(CondCode::Lt.eval(u64::MAX, 0)); // -1 < 0
        assert!(CondCode::Gt.eval(1, u64::MAX));
        assert!(CondCode::Eq.eval(7, 7));
    }

    #[test]
    fn class_mapping() {
        let ld = StaticInst::new(
            0,
            OpKind::Load {
                mem: MemRef::rip(0x1000),
                size: 8,
            },
        );
        assert_eq!(ld.class(), InstClass::Load);
        let mul = StaticInst::new(1, OpKind::Alu(AluOp::Mul));
        assert_eq!(mul.class(), InstClass::Mul);
        let lea = StaticInst::new(2, OpKind::Lea(MemRef::base_disp(ArchReg::RSP, 8)));
        assert_eq!(lea.class(), InstClass::Alu);
    }
}
