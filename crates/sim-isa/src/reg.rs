//! Architectural registers.

/// An architectural general-purpose register.
///
/// Registers 0..=15 mirror the x86-64 GPR file (with [`ArchReg::RSP`] and
/// [`ArchReg::RBP`] at their native encodings 4 and 5). Registers 16..=31
/// exist only in "APX mode" programs (Appendix B of the paper doubles the
/// architectural register count to study its effect on global-stable loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Number of registers in the base x86-64-like mode.
    pub const NUM_BASE: usize = 16;
    /// Number of registers in APX mode.
    pub const NUM_APX: usize = 32;

    pub const RAX: ArchReg = ArchReg(0);
    pub const RCX: ArchReg = ArchReg(1);
    pub const RDX: ArchReg = ArchReg(2);
    pub const RBX: ArchReg = ArchReg(3);
    /// Stack pointer.
    pub const RSP: ArchReg = ArchReg(4);
    /// Frame/base pointer.
    pub const RBP: ArchReg = ArchReg(5);
    pub const RSI: ArchReg = ArchReg(6);
    pub const RDI: ArchReg = ArchReg(7);
    pub const R8: ArchReg = ArchReg(8);
    pub const R9: ArchReg = ArchReg(9);
    pub const R10: ArchReg = ArchReg(10);
    pub const R11: ArchReg = ArchReg(11);
    pub const R12: ArchReg = ArchReg(12);
    pub const R13: ArchReg = ArchReg(13);
    pub const R14: ArchReg = ArchReg(14);
    pub const R15: ArchReg = ArchReg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `idx >= ArchReg::NUM_APX`.
    #[inline]
    pub fn new(idx: u8) -> Self {
        assert!(
            (idx as usize) < Self::NUM_APX,
            "register index {idx} out of range"
        );
        ArchReg(idx)
    }

    /// The register's index in the architectural file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two stack registers (RSP or RBP).
    ///
    /// The paper's RMT gives stack registers deeper PC lists (16 vs 8)
    /// because so many likely-stable loads are stack-relative.
    #[inline]
    pub fn is_stack_reg(self) -> bool {
        self == Self::RSP || self == Self::RBP
    }

    /// Iterator over all registers available in the given mode.
    pub fn all(apx: bool) -> impl Iterator<Item = ArchReg> {
        let n = if apx { Self::NUM_APX } else { Self::NUM_BASE };
        (0..n as u8).map(ArchReg)
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        match NAMES.get(self.0 as usize) {
            Some(name) => f.write_str(name),
            None => write!(f, "r{}", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_registers_are_rsp_rbp_only() {
        let stack: Vec<_> = ArchReg::all(false).filter(|r| r.is_stack_reg()).collect();
        assert_eq!(stack, vec![ArchReg::RSP, ArchReg::RBP]);
    }

    #[test]
    fn apx_mode_exposes_32_registers() {
        assert_eq!(ArchReg::all(true).count(), 32);
        assert_eq!(ArchReg::all(false).count(), 16);
    }

    #[test]
    fn display_uses_x86_names_for_low_registers() {
        assert_eq!(ArchReg::RSP.to_string(), "rsp");
        assert_eq!(ArchReg::new(20).to_string(), "r20");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_index() {
        let _ = ArchReg::new(32);
    }
}
