//! # sim-isa — the micro-op ISA model
//!
//! This crate defines the instruction-set substrate shared by every other
//! crate in the Constable reproduction: architectural registers (an
//! x86-64-like file of 16 general-purpose registers, with an optional
//! 32-register "APX" mode used by the Appendix-B study), memory addressing
//! modes (PC-relative, stack-relative, register-relative — the three classes
//! the paper characterizes in §4.1.1), static instructions, and dynamic
//! (executed) instruction records produced by the functional executor.
//!
//! The model is a RISC-like µop ISA rather than raw x86-64: each static
//! instruction is one µop with at most one memory operand, which matches the
//! granularity at which the paper's mechanisms (SLD/RMT/AMT lookup, rename
//! optimizations, port scheduling) operate.
//!
//! ```
//! use sim_isa::{ArchReg, MemRef, AddrMode};
//!
//! let stack_slot = MemRef::base_disp(ArchReg::RSP, 0x14);
//! assert_eq!(stack_slot.addr_mode(), AddrMode::StackRelative);
//! ```

mod codec;
mod inst;
mod reg;

pub use codec::{CodecError, Dec, Enc};
pub use inst::{
    AluOp, BranchKind, CondCode, DynInst, InstClass, MemAccess, MemRef, OpKind, StaticInst,
};
pub use reg::ArchReg;

/// A program counter value.
///
/// PCs in generated programs start at [`Pc::TEXT_BASE`] and advance by
/// [`Pc::INST_BYTES`] per static instruction, mimicking a fixed-width
/// encoding. The newtype keeps PCs from being confused with data addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl Pc {
    /// Base virtual address of the generated text segment.
    pub const TEXT_BASE: u64 = 0x40_0000;
    /// Bytes per (fixed-width) instruction in generated programs.
    pub const INST_BYTES: u64 = 4;

    /// PC of the static instruction at index `idx`.
    #[inline]
    pub fn from_index(idx: u32) -> Self {
        Pc(Self::TEXT_BASE + u64::from(idx) * Self::INST_BYTES)
    }

    /// Static-instruction index this PC refers to.
    ///
    /// # Panics
    /// Panics if the PC lies outside the generated text segment.
    #[inline]
    pub fn index(self) -> u32 {
        debug_assert!(self.0 >= Self::TEXT_BASE, "pc below text base: {self}");
        ((self.0 - Self::TEXT_BASE) / Self::INST_BYTES) as u32
    }

    /// PC of the next sequential instruction.
    #[inline]
    pub fn fallthrough(self) -> Self {
        Pc(self.0 + Self::INST_BYTES)
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Pc> for u64 {
    fn from(pc: Pc) -> u64 {
        pc.0
    }
}

/// Memory addressing mode classes used throughout the paper (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// RIP-relative: loads of global-scope variables / runtime constants.
    PcRelative,
    /// RSP- or RBP-based with no index register: stack accesses
    /// (spilled locals, inlined-function arguments).
    StackRelative,
    /// Any other general-purpose base/index combination
    /// (struct fields behind pointers, array elements, …).
    RegRelative,
}

impl AddrMode {
    /// All modes, in the paper's presentation order.
    pub const ALL: [AddrMode; 3] = [
        AddrMode::PcRelative,
        AddrMode::StackRelative,
        AddrMode::RegRelative,
    ];

    /// Short label used in experiment output ("PC-rel", "Stack-rel", "Reg-rel").
    pub fn label(self) -> &'static str {
        match self {
            AddrMode::PcRelative => "PC-rel",
            AddrMode::StackRelative => "Stack-rel",
            AddrMode::RegRelative => "Reg-rel",
        }
    }
}

impl std::fmt::Display for AddrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_roundtrips_through_index() {
        for idx in [0u32, 1, 17, 4096, 1 << 20] {
            assert_eq!(Pc::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn pc_fallthrough_advances_one_slot() {
        let pc = Pc::from_index(7);
        assert_eq!(pc.fallthrough().index(), 8);
    }

    #[test]
    fn addr_mode_labels_are_distinct() {
        let labels: Vec<_> = AddrMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn pc_displays_as_hex() {
        assert_eq!(Pc(0x400000).to_string(), "0x400000");
    }
}
