//! Stable little-endian byte codec for checkpoint serialization.
//!
//! Every crate that contributes state to a simulation checkpoint encodes it
//! through [`Enc`] and decodes it through [`Dec`]. The discipline mirrors
//! the result-store record codec: fixed little-endian widths, no
//! self-describing framing (the layout *is* the format, pinned by
//! `CKPT_FORMAT_VERSION` in `sim-core` and a drift-guard test), and
//! bounds-checked reads that fail loudly instead of wrapping.
//!
//! `Dec` never panics on malformed input: a truncated or out-of-range field
//! surfaces as a [`CodecError`] so a damaged checkpoint can be quarantined
//! rather than poison the process.

use crate::{DynInst, MemAccess, Pc};

/// Error produced when decoding malformed checkpoint bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field at byte offset `at` was complete.
    Truncated { at: usize },
    /// A `bool` field held a byte other than 0 or 1.
    BadBool { at: usize, byte: u8 },
    /// A tag byte (e.g. an `Option` discriminant) held an invalid value.
    BadTag { at: usize, byte: u8 },
    /// A length prefix exceeded the remaining buffer (corruption guard).
    BadLength { at: usize, len: u64 },
    /// Bytes remained after the final field of a complete decode.
    TrailingBytes { remaining: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "truncated at byte {at}"),
            CodecError::BadBool { at, byte } => {
                write!(f, "invalid bool byte {byte:#04x} at {at}")
            }
            CodecError::BadTag { at, byte } => {
                write!(f, "invalid tag byte {byte:#04x} at {at}")
            }
            CodecError::BadLength { at, len } => {
                write!(f, "length {len} at byte {at} exceeds buffer")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an encoder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `usize` as a fixed 8-byte value (platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Encodes an optional value: 1-byte presence tag, then the payload.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Encodes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no length prefix (caller knows the width).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Encodes a length prefix for a sequence the caller then writes.
    pub fn seq_len(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the buffer was fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.buf.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let at = self.pos;
        let end = at.checked_add(n).ok_or(CodecError::Truncated { at })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated { at });
        }
        self.pos = end;
        Ok(&self.buf[at..end])
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.take(1)?[0] as i8)
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decodes a fixed 8-byte `usize`, rejecting values that overflow the
    /// platform word or the remaining buffer length heuristic is left to
    /// the caller via [`Dec::seq_len`].
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength { at, len: v })
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            byte => Err(CodecError::BadBool { at, byte }),
        }
    }

    /// Decodes an optional value written by [`Enc::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            byte => Err(CodecError::BadTag { at, byte }),
        }
    }

    /// Decodes a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.seq_len()?;
        self.take(len)
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Decodes a sequence length prefix, rejecting lengths that cannot fit
    /// in the remaining buffer even at one byte per element — the cheap
    /// corruption guard that keeps a flipped length bit from triggering a
    /// multi-gigabyte allocation.
    pub fn seq_len(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        let v = self.u64()?;
        let len = usize::try_from(v).map_err(|_| CodecError::BadLength { at, len: v })?;
        if len > self.remaining() {
            return Err(CodecError::BadLength { at, len: v });
        }
        Ok(len)
    }
}

impl DynInst {
    /// Encodes this executed-instruction record (checkpoint replay buffer).
    pub fn encode(&self, e: &mut Enc) {
        let DynInst {
            seq,
            sidx,
            pc,
            next_pc,
            taken,
            mem,
            dst_value,
        } = self;
        e.u64(*seq);
        e.u32(*sidx);
        e.u64(pc.0);
        e.u64(next_pc.0);
        e.bool(*taken);
        e.opt(mem, |e, m| {
            e.u64(m.addr);
            e.u64(m.value);
            e.u8(m.size);
        });
        e.u64(*dst_value);
    }

    /// Decodes a record written by [`DynInst::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<DynInst, CodecError> {
        Ok(DynInst {
            seq: d.u64()?,
            sidx: d.u32()?,
            pc: Pc(d.u64()?),
            next_pc: Pc(d.u64()?),
            taken: d.bool()?,
            mem: d.opt(|d| {
                Ok(MemAccess {
                    addr: d.u64()?,
                    value: d.u64()?,
                    size: d.u8()?,
                })
            })?,
            dst_value: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(0x0123_4567_89ab_cdef);
        e.i8(-7);
        e.i64(-42);
        e.usize(12345);
        e.bool(true);
        e.bool(false);
        e.bytes(b"hello");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.i8().unwrap(), -7);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"hello");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_read_errors_instead_of_panicking() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert!(matches!(d.u64(), Err(CodecError::Truncated { at: 0 })));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_detected() {
        let mut d = Dec::new(&[7]);
        assert!(matches!(
            d.bool(),
            Err(CodecError::BadBool { at: 0, byte: 7 })
        ));
        let d = Dec::new(&[0, 0]);
        assert!(matches!(
            d.finish(),
            Err(CodecError::TrailingBytes { remaining: 2 })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.seq_len(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn dyninst_roundtrip_with_and_without_mem() {
        let with_mem = DynInst {
            seq: 42,
            sidx: 7,
            pc: Pc(0x40_0010),
            next_pc: Pc(0x40_0014),
            taken: true,
            mem: Some(MemAccess {
                addr: 0x7fff_0040,
                value: 99,
                size: 8,
            }),
            dst_value: 99,
        };
        let without = DynInst {
            mem: None,
            ..with_mem
        };
        for rec in [with_mem, without] {
            let mut e = Enc::new();
            rec.encode(&mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let back = DynInst::decode(&mut d).unwrap();
            d.finish().unwrap();
            assert_eq!(back, rec);
        }
    }
}
