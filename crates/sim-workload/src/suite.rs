//! The 90-trace workload suite (paper Table 4).
//!
//! The paper evaluates 90 traces from 58 workloads across five categories
//! (Client 22, Enterprise 14, FSPEC17 29, ISPEC17 11, Server 14). Each trace
//! here is a [`WorkloadSpec`]: a seeded kernel mix whose category-specific
//! weights were tuned so the measured global-stable load fractions and
//! addressing-mode/inter-occurrence distributions match Fig. 3's shape.

use crate::kernels::{emit_kernel, KernelCtx, KernelKind, ARG_SLOT_DISP, MAIN_FRAME};
use crate::program::{Program, ProgramBuilder, STACK_TOP};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sim_isa::{AluOp, ArchReg};

/// Workload category, as in the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    Client,
    Enterprise,
    Fspec17,
    Ispec17,
    Server,
}

impl Category {
    /// All categories, in the paper's presentation order.
    pub const ALL: [Category; 5] = [
        Category::Client,
        Category::Enterprise,
        Category::Fspec17,
        Category::Ispec17,
        Category::Server,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::Client => "Client",
            Category::Enterprise => "Enterprise",
            Category::Fspec17 => "FSPEC17",
            Category::Ispec17 => "ISPEC17",
            Category::Server => "Server",
        }
    }

    /// Kernel mix weights (calls per main-loop iteration) for this category.
    fn weights(self) -> Vec<(KernelKind, u32)> {
        use KernelKind::*;
        match self {
            Category::Client => vec![
                (GlobalConst, 3),
                (CallHeavy, 3),
                (Branchy, 2),
                (InlinedArgs, 2),
                (HashProbe, 1),
                (Stream, 1),
                (Churn, 1),
            ],
            Category::Enterprise => vec![
                (HashProbe, 3),
                (CallHeavy, 2),
                (InlinedArgs, 2),
                (GlobalConst, 2),
                (Churn, 1),
                (PtrChase, 1),
            ],
            Category::Fspec17 => vec![(Matrix, 4), (Stream, 4), (InlinedArgs, 1), (GlobalConst, 1)],
            Category::Ispec17 => vec![
                (Branchy, 2),
                (PtrChase, 2),
                (HashProbe, 2),
                (InlinedArgs, 2),
                (GlobalConst, 1),
                (Stream, 1),
                (Churn, 1),
            ],
            Category::Server => vec![
                (CallHeavy, 4),
                (GlobalConst, 3),
                (HashProbe, 2),
                (InlinedArgs, 2),
                (Churn, 1),
            ],
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Specification of one workload trace.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Trace name (mirrors the paper's workload names where it lists them).
    pub name: String,
    /// Workload category.
    pub category: Category,
    /// Generation seed; two specs with the same seed build identical programs.
    pub seed: u64,
    /// Kernel mix: calls per main-loop iteration.
    pub weights: Vec<(KernelKind, u32)>,
    /// Generate for the 32-register APX study (Appendix B).
    pub apx: bool,
}

impl WorkloadSpec {
    /// Creates a spec with the category's default mix, jittered by `seed`.
    pub fn new(name: impl Into<String>, category: Category, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ C0N_STABLE_SALT());
        let mut weights = category.weights();
        // Per-trace personality: nudge two kernel weights.
        for _ in 0..2 {
            let i = rng.gen_range(0..weights.len());
            let bump = rng.gen_range(0..=1);
            weights[i].1 = (weights[i].1 + bump).max(1);
        }
        WorkloadSpec {
            name: name.into(),
            category,
            seed,
            weights,
            apx: false,
        }
    }

    /// Returns a copy targeting APX (32-register) code generation.
    pub fn with_apx(mut self, apx: bool) -> Self {
        self.apx = apx;
        self
    }

    /// Appends the stable on-disk key encoding of this spec to `out`: the
    /// trace name (length-prefixed), category, generation seed, the full
    /// kernel-mix weights, and the APX flag — everything [`build`]
    /// (WorkloadSpec::build) is a deterministic function of, plus the name
    /// (which labels the persisted outcome). Part of the result-store key
    /// format: explicit little-endian bytes, stable across processes and
    /// builds, with kernel kinds encoded by their [`KernelKind::ALL`]
    /// position rather than compiler-assigned discriminants. Exhaustive
    /// destructuring: adding a spec field breaks this at compile time.
    pub fn stable_key_encode(&self, out: &mut Vec<u8>) {
        let WorkloadSpec {
            name,
            category,
            seed,
            weights,
            apx,
        } = self;
        out.extend_from_slice(&(name.len() as u64).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        let cat = Category::ALL
            .iter()
            .position(|c| c == category)
            .expect("known category") as u8;
        out.push(cat);
        out.extend_from_slice(&seed.to_le_bytes());
        out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
        for (kind, weight) in weights {
            let k = KernelKind::ALL
                .iter()
                .position(|x| x == kind)
                .expect("known kernel kind") as u8;
            out.push(k);
            out.extend_from_slice(&weight.to_le_bytes());
        }
        out.push(u8::from(*apx));
    }

    /// [`WorkloadSpec::build`] wrapped in an [`Arc`](std::sync::Arc), for
    /// harnesses that share one program across many simulations (the sweep
    /// session caches these so each trace is assembled exactly once per
    /// process, not once per (figure × config)).
    pub fn build_arc(&self) -> std::sync::Arc<Program> {
        std::sync::Arc::new(self.build())
    }

    /// Builds the program for this spec. Deterministic in `seed`.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new(self.name.clone()).with_apx(self.apx);
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Emit the kernel functions and assemble the call schedule.
        let mut schedule = Vec::new();
        for &(kind, weight) in &self.weights {
            // Larger weights get extra static instances for PC diversity.
            let instances = 1 + (weight > 2) as u32;
            let mut labels = Vec::new();
            for _ in 0..instances {
                let mut ctx = KernelCtx {
                    b: &mut b,
                    rng: &mut rng,
                };
                labels.push(emit_kernel(kind, &mut ctx));
            }
            for c in 0..weight {
                schedule.push(labels[(c as usize) % labels.len()]);
            }
        }
        schedule.shuffle(&mut rng);

        // Main: establish the frame, arg slots come from the memory image
        // (trace-snapshot semantics: they were written before the trace).
        b.set_entry();
        b.alui(AluOp::Sub, ArchReg::RSP, ArchReg::RSP, MAIN_FRAME);
        b.mov(ArchReg::RBP, ArchReg::RSP);
        let rbp = STACK_TOP - MAIN_FRAME as u64;
        b.init_u64(rbp + ARG_SLOT_DISP as u64, 0x0101);
        b.init_u64(rbp + ARG_SLOT_DISP as u64 + 8, 0x0202);
        b.init_u64(rbp + ARG_SLOT_DISP as u64 + 16, 0x0303);

        let top = b.bind_new_label();
        for (i, &f) in schedule.iter().enumerate() {
            b.call(f);
            if i % 3 == 0 {
                // Light glue code between kernel calls.
                b.alui(AluOp::Add, ArchReg::R15, ArchReg::R15, 1);
                b.alui(AluOp::Xor, ArchReg::RAX, ArchReg::RAX, 0x3)
            } else {
                b.nop()
            };
        }
        b.jmp(top);
        b.build()
    }
}

// A whimsical constant so spec jitter differs from program-build randomness.
#[allow(non_snake_case)]
#[inline]
fn C0N_STABLE_SALT() -> u64 {
    0x5eed_5a17
}

/// Builds the full 90-trace suite (Table 4 shape: 22/14/29/11/14 traces).
pub fn suite() -> Vec<WorkloadSpec> {
    let mut out = Vec::with_capacity(90);
    let mut seed = 0x1000u64;
    let mut push = |out: &mut Vec<WorkloadSpec>, name: String, cat: Category| {
        seed += 0x9e37;
        out.push(WorkloadSpec::new(name, cat, seed));
    };

    // Client: 16 workloads, 22 traces.
    const CLIENT: [&str; 16] = [
        "sysmark-chrome",
        "sysmark-office",
        "jetstream2-richards",
        "jetstream2-richards_wasm",
        "jetstream2-gbemu",
        "dacapo-h2",
        "dacapo-fop",
        "dacapo-luindex",
        "tabletmark-web",
        "tabletmark-photo",
        "speedometer-vue",
        "speedometer-react",
        "webxprt-photo",
        "crxprt-doc",
        "pcmark-writing",
        "pcmark-edit",
    ];
    for (i, name) in CLIENT.iter().enumerate() {
        push(&mut out, format!("{name}.t1"), Category::Client);
        if i < 6 {
            push(&mut out, format!("{name}.t2"), Category::Client);
        }
    }

    // Enterprise: 9 workloads, 14 traces.
    const ENTERPRISE: [&str; 9] = [
        "specjbb2015",
        "specjenterprise",
        "lammps-lj",
        "lammps-rhodo",
        "sap-sd",
        "oracle-oltp",
        "exchange-mail",
        "tpcc-like",
        "tpch-q6",
    ];
    for (i, name) in ENTERPRISE.iter().enumerate() {
        push(&mut out, format!("{name}.t1"), Category::Enterprise);
        if i < 5 {
            push(&mut out, format!("{name}.t2"), Category::Enterprise);
        }
    }

    // FSPEC17: 13 workloads, 29 traces.
    const FSPEC: [&str; 13] = [
        "503.bwaves_r",
        "507.cactuBSSN_r",
        "508.namd_r",
        "510.parest_r",
        "511.povray_r",
        "519.lbm_r",
        "521.wrf_r",
        "526.blender_r",
        "527.cam4_r",
        "538.imagick_r",
        "544.nab_r",
        "549.fotonik3d_r",
        "554.roms_r",
    ];
    for (i, name) in FSPEC.iter().enumerate() {
        push(&mut out, format!("{name}.t1"), Category::Fspec17);
        push(&mut out, format!("{name}.t2"), Category::Fspec17);
        if i < 3 {
            push(&mut out, format!("{name}.t3"), Category::Fspec17);
        }
    }

    // ISPEC17: 10 workloads, 11 traces.
    const ISPEC: [&str; 10] = [
        "500.perlbench_r",
        "502.gcc_r",
        "505.mcf_r",
        "520.omnetpp_r",
        "523.xalancbmk_r",
        "525.x264_r",
        "531.deepsjeng_r",
        "541.leela_r",
        "548.exchange2_r",
        "557.xz_r",
    ];
    for (i, name) in ISPEC.iter().enumerate() {
        push(&mut out, format!("{name}.t1"), Category::Ispec17);
        if i == 7 {
            // leela gets a second trace — it is the paper's flagship example.
            push(&mut out, format!("{name}.t2"), Category::Ispec17);
        }
    }

    // Server: 10 workloads, 14 traces.
    const SERVER: [&str; 10] = [
        "hadoop_kmeans",
        "hadoop_sort",
        "linpack",
        "snort",
        "bigbench-q1",
        "bigbench-q7",
        "nginx-static",
        "redis-get",
        "memcached-mc",
        "mysql-oltp",
    ];
    for (i, name) in SERVER.iter().enumerate() {
        push(&mut out, format!("{name}.t1"), Category::Server);
        if i < 4 {
            push(&mut out, format!("{name}.t2"), Category::Server);
        }
    }

    debug_assert_eq!(out.len(), 90);
    out
}

/// A deliberately memory-bound trace: streaming, matrix, pointer-chase, and
/// hash-probe kernels dominate, so nearly every cycle touches the cache
/// hierarchy. Used by the `bench/memory` harness and the memory-stress rows
/// of the scheduling trace-oracle matrix; two specs with the same seed
/// build identical programs.
pub fn memory_stress(seed: u64) -> WorkloadSpec {
    use KernelKind::*;
    WorkloadSpec {
        name: format!("memstress.{seed:#x}"),
        category: Category::Fspec17,
        seed,
        weights: vec![
            (Stream, 4),
            (Matrix, 3),
            (PtrChase, 3),
            (HashProbe, 2),
            (Churn, 2),
        ],
        apx: false,
    }
}

/// A small, category-balanced subset of the suite (for tests and quick runs).
pub fn suite_subset(n: usize) -> Vec<WorkloadSpec> {
    let full = suite();
    let mut out = Vec::with_capacity(n);
    // Round-robin over categories for balance.
    let mut by_cat: Vec<Vec<WorkloadSpec>> = Category::ALL
        .iter()
        .map(|c| full.iter().filter(|w| w.category == *c).cloned().collect())
        .collect();
    let mut i = 0;
    while out.len() < n {
        let cat = &mut by_cat[i % Category::ALL.len()];
        if !cat.is_empty() {
            out.push(cat.remove(0));
        }
        i += 1;
        if i > 1000 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;

    #[test]
    fn suite_has_90_traces_with_paper_category_counts() {
        let s = suite();
        assert_eq!(s.len(), 90);
        let count = |c: Category| s.iter().filter(|w| w.category == c).count();
        assert_eq!(count(Category::Client), 22);
        assert_eq!(count(Category::Enterprise), 14);
        assert_eq!(count(Category::Fspec17), 29);
        assert_eq!(count(Category::Ispec17), 11);
        assert_eq!(count(Category::Server), 14);
    }

    #[test]
    fn trace_names_are_unique() {
        let s = suite();
        let mut names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 90);
    }

    #[test]
    fn stable_keys_are_deterministic_and_distinct() {
        let enc = |s: &WorkloadSpec| {
            let mut v = Vec::new();
            s.stable_key_encode(&mut v);
            v
        };
        let s = suite();
        assert_eq!(enc(&s[0]), enc(&s[0].clone()));
        let mut keys: Vec<Vec<u8>> = s.iter().map(enc).collect();
        keys.push(enc(&s[0].clone().with_apx(true)));
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "workload key collision");
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = &suite()[0];
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.insts().len(), b.insts().len());
        assert_eq!(a.insts(), b.insts());
        assert_eq!(a.data_init(), b.data_init());
    }

    #[test]
    fn every_trace_executes_100k_instructions() {
        // Smoke test over a category-balanced subset (full suite is covered
        // by integration tests in release mode).
        for spec in suite_subset(10) {
            let p = spec.build();
            let mut m = Machine::new(&p);
            let mut loads = 0u64;
            for _ in 0..100_000 {
                let rec = m.step();
                if p.inst(rec.sidx).is_load() {
                    loads += 1;
                }
            }
            let frac = loads as f64 / 100_000.0;
            assert!(
                (0.05..0.60).contains(&frac),
                "{}: implausible load fraction {frac:.3}",
                spec.name
            );
        }
    }

    #[test]
    fn apx_mode_reduces_dynamic_loads() {
        let spec = suite()
            .into_iter()
            .find(|w| w.category == Category::Server)
            .unwrap();
        let count_loads = |apx: bool| {
            let p = spec.clone().with_apx(apx).build();
            let mut m = Machine::new(&p);
            let mut loads = 0u64;
            for _ in 0..200_000 {
                let rec = m.step();
                if p.inst(rec.sidx).is_load() {
                    loads += 1;
                }
            }
            loads
        };
        let base = count_loads(false);
        let apx = count_loads(true);
        assert!(
            apx < base,
            "APX should reduce dynamic loads: base={base} apx={apx}"
        );
    }
}
