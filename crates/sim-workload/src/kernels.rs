//! Kernel templates for synthetic workload generation.
//!
//! Each kernel emits one callable function into a [`ProgramBuilder`] and
//! models a load-behaviour pattern the paper characterizes:
//!
//! * [`KernelKind::GlobalConst`] — the `541.leela_r get_Rng()` pattern
//!   (§4.2, Fig 5a/b): a PC-relative load of a pointer that is a runtime
//!   constant, followed by register-relative loads of the pointed-to object's
//!   immutable fields. Global-stable, short inter-occurrence distance.
//! * [`KernelKind::InlinedArgs`] — the `557.xz_r rc_shift_low` pattern
//!   (§4.2, Fig 5c/d): function arguments spilled to the caller's frame once
//!   and reloaded from stack-relative slots inside a hot loop because the
//!   register allocator ran out of registers. Global-stable. Also emits a
//!   per-call *silent-store* spill slot (Fig 17's lost-opportunity class).
//! * [`KernelKind::Stream`] — array streaming with stride-predictable values
//!   (EVES-friendly, prefetch-friendly, almost no stable loads; FSPEC-like).
//! * [`KernelKind::PtrChase`] — dependent pointer chasing (cache-missy,
//!   value-unpredictable; stresses load latency, not stability).
//! * [`KernelKind::HashProbe`] — pseudo-random indexed probes with
//!   data-dependent branches (server/enterprise-like).
//! * [`KernelKind::CallHeavy`] — many small callees, each reloading runtime
//!   constants (client/server-like; mid-range inter-occurrence distances).
//! * [`KernelKind::Matrix`] — nested FP-style loops with per-call spilled
//!   bounds (MRN-friendly store→load pairs; FSPEC-like).
//! * [`KernelKind::Branchy`] — data-dependent branches exercising wrong-path
//!   fetch (and wrong-path pollution of Constable structures, §6.7.2).
//! * [`KernelKind::Churn`] — loads that are stable only within a phase:
//!   every invocation overwrites the watched global, so the loads are *not*
//!   global-stable yet Constable eliminates them at runtime (Fig 17's
//!   "not global-stable but eliminated" class).
//!
//! In APX mode (32 architectural registers, Appendix B) the generator keeps
//! spilled values in the extra registers instead of reloading them from the
//! stack, reproducing the paper's observation that APX removes many stack
//! loads but leaves PC-relative runtime-constant loads untouched.

use crate::program::{Label, ProgramBuilder};
use rand::rngs::SmallRng;
use rand::Rng;
use sim_isa::{AluOp, ArchReg, CondCode, MemRef};

/// The kernel template families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    GlobalConst,
    InlinedArgs,
    Stream,
    PtrChase,
    HashProbe,
    CallHeavy,
    Matrix,
    Branchy,
    Churn,
}

impl KernelKind {
    /// Every kernel kind.
    pub const ALL: [KernelKind; 9] = [
        KernelKind::GlobalConst,
        KernelKind::InlinedArgs,
        KernelKind::Stream,
        KernelKind::PtrChase,
        KernelKind::HashProbe,
        KernelKind::CallHeavy,
        KernelKind::Matrix,
        KernelKind::Branchy,
        KernelKind::Churn,
    ];
}

/// Frame displacement (from the main frame pointer RBP) of the "inlined
/// argument" slots written once into the initial stack image.
pub const ARG_SLOT_DISP: i64 = 0x40;
/// Size of the main function's stack frame.
pub const MAIN_FRAME: i64 = 0x200;

/// Per-kernel generation context.
pub struct KernelCtx<'a> {
    pub b: &'a mut ProgramBuilder,
    pub rng: &'a mut SmallRng,
}

impl KernelCtx<'_> {
    fn jitter(&mut self, base: u32, spread: u32) -> i64 {
        (base + self.rng.gen_range(0..=spread)) as i64
    }
}

/// Emits the function for `kind`; returns the label to `call`.
pub fn emit_kernel(kind: KernelKind, ctx: &mut KernelCtx<'_>) -> Label {
    match kind {
        KernelKind::GlobalConst => emit_global_const(ctx),
        KernelKind::InlinedArgs => emit_inlined_args(ctx),
        KernelKind::Stream => emit_stream(ctx),
        KernelKind::PtrChase => emit_ptr_chase(ctx),
        KernelKind::HashProbe => emit_hash_probe(ctx),
        KernelKind::CallHeavy => emit_call_heavy(ctx),
        KernelKind::Matrix => emit_matrix(ctx),
        KernelKind::Branchy => emit_branchy(ctx),
        KernelKind::Churn => emit_churn(ctx),
    }
}

use ArchReg as R;

/// Allocates an array of `len` u64 values produced by `f`.
fn alloc_array(b: &mut ProgramBuilder, len: u64, mut f: impl FnMut(u64) -> u64) -> u64 {
    let base = b.alloc_region(len);
    for i in 0..len {
        let v = f(i);
        if v != 0 {
            b.init_u64(base + i * 8, v);
        }
    }
    base
}

fn emit_global_const(ctx: &mut KernelCtx<'_>) -> Label {
    let b = &mut *ctx.b;
    // Two immutable "objects": a runtime-constant global pointer leads to
    // the first, whose field points at the second — a dependent chain of
    // stable loads, exactly the `get_Rng()` pattern of 541.leela_r.
    let obj2 = b.alloc_region(8);
    for i in 0..8u64 {
        b.init_u64(obj2 + i * 8, 0x2000 + i * 11);
    }
    let obj = b.alloc_region(8);
    b.init_u64(obj + 0x10, obj2);
    b.init_u64(obj + 0x18, 0x1077);
    let g_ptr = b.alloc_global(obj);
    let arr = alloc_array(b, 0x400, |i| i.wrapping_mul(0x9e37_79b9) ^ 0x55);
    let iters = ctx.jitter(128, 128);
    let prime = 0x9e37_79b1u32 as i64;

    let b = &mut *ctx.b;
    let f = b.label();
    b.bind(f);
    // Pointer loads happen once per call (the compiler hoists them within
    // the loop but cannot keep them across the program's global scope —
    // the paper's §4.2 observation). The object pointers stay loop-
    // invariant in r8/rax, so the field loads below are eliminable for the
    // whole invocation.
    b.load_rip(R::R8, g_ptr); // PC-relative, global-stable
    b.movi(R::RCX, 0);
    b.load(R::RAX, MemRef::base_disp(R::R8, 0x10)); // reg-relative, global-stable
    b.movi(R::R9, 0);
    let top = b.bind_new_label();
    b.load(R::RDX, MemRef::base_disp(R::RAX, 0x8)); // reg-relative, global-stable
    b.alui(AluOp::Mul, R::R10, R::RCX, prime);
    b.load(R::RSI, MemRef::base_disp(R::RAX, 0x18)); // reg-relative, global-stable
    b.alui(AluOp::And, R::R10, R::R10, 0x3ff);
    b.load(R::R13, MemRef::base_disp(R::R8, 0x18)); // reg-relative, global-stable
    b.lea(R::R11, MemRef::rip(arr));
    b.alu(AluOp::Add, R::R9, R::R9, R::RDX);
    b.load(R::R12, MemRef::base_index(R::R11, R::R10, 8, 0)); // non-stable
    b.alu(AluOp::Xor, R::R9, R::R9, R::RSI);
    b.alu(AluOp::Add, R::R9, R::R9, R::R13);
    b.alu(AluOp::Add, R::R9, R::R9, R::R12);
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

fn emit_inlined_args(ctx: &mut KernelCtx<'_>) -> Label {
    let apx = ctx.b.apx();
    let iters = ctx.jitter(96, 64);
    let b = &mut *ctx.b;
    let out = b.alloc_region(0x200);
    let out_mask = 0x1ff;

    let f = b.label();
    b.bind(f);
    b.alui(AluOp::Sub, R::RSP, R::RSP, 0x40);
    // A value spilled at every call with the same contents: a *silent store*
    // to a watched slot — resets AMT although the data never changes.
    b.movi(R::R9, 0x77);
    b.store(R::R9, MemRef::base_disp(R::RSP, 0x8));
    b.movi(R::RCX, 0);
    b.movi(R::R10, 0);
    if apx {
        // With 32 registers the "compiler" hoists the argument loads out of
        // the loop into the extra registers — no per-iteration stack reloads.
        b.load(R::new(16), MemRef::base_disp(R::RBP, ARG_SLOT_DISP));
        b.load(R::new(17), MemRef::base_disp(R::RBP, ARG_SLOT_DISP + 8));
        b.load(R::new(18), MemRef::base_disp(R::RBP, ARG_SLOT_DISP + 16));
    }
    let top = b.bind_new_label();
    if apx {
        b.mov(R::RAX, R::new(16));
        b.mov(R::RDX, R::new(17));
        b.mov(R::R8, R::new(18));
        b.alu(AluOp::Add, R::R10, R::R10, R::RAX);
        b.alu(AluOp::Xor, R::R10, R::R10, R::RDX);
    } else {
        // The xz pattern: caller-frame argument slots reloaded in the hot
        // loop under register pressure. Stack-relative, global-stable,
        // interleaved with consuming ALU work.
        b.load(R::RAX, MemRef::base_disp(R::RBP, ARG_SLOT_DISP));
        b.alu(AluOp::Add, R::R10, R::R10, R::RAX);
        b.load(R::RDX, MemRef::base_disp(R::RBP, ARG_SLOT_DISP + 8));
        b.alu(AluOp::Xor, R::R10, R::R10, R::RDX);
        b.load(R::R8, MemRef::base_disp(R::RBP, ARG_SLOT_DISP + 16));
    }
    b.alui(AluOp::And, R::R11, R::RCX, out_mask);
    // Reload the silently-spilled local.
    b.load(R::R9, MemRef::base_disp(R::RSP, 0x8));
    b.alu(AluOp::Add, R::R10, R::R10, R::R9);
    b.lea(R::R12, MemRef::rip(out));
    b.store(R::R10, MemRef::base_index(R::R12, R::R11, 8, 0));
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.alui(AluOp::Add, R::RSP, R::RSP, 0x40);
    b.ret();
    f
}

fn emit_stream(ctx: &mut KernelCtx<'_>) -> Label {
    let len = 1u64 << ctx.rng.gen_range(13..=15); // 64–256 KiB per array
    let stride_val = ctx.rng.gen_range(1..=9u64);
    // Real streaming loops run thousands of iterations per invocation;
    // that is what makes them stride-value-predictable in practice.
    let iters = ctx.jitter(512, 512);
    let b = &mut *ctx.b;
    // Stride-valued arrays: EVES' E-Stride component predicts these loads.
    let arr = alloc_array(b, len, |i| 0x40 + i * stride_val);
    let arr2 = alloc_array(b, len, |i| 0x11 + i * 3);
    let g_len = b.alloc_global(len);

    let f = b.label();
    b.bind(f);
    b.movi(R::RDI, 0);
    b.movi(R::R9, 0);
    b.movi(R::RCX, 0);
    b.load_rip(R::R11, g_len); // global-stable bound
    b.lea(R::R10, MemRef::rip(arr));
    b.lea(R::R13, MemRef::rip(arr2));
    let top = b.bind_new_label();
    b.load(R::R8, MemRef::base_index(R::R10, R::RDI, 8, 0)); // streaming
    b.alu(AluOp::Add, R::R9, R::R9, R::R8);
    b.load(R::R12, MemRef::base_index(R::R13, R::RDI, 8, 0)); // second stream
    b.alu(AluOp::Xor, R::R9, R::R9, R::R12);
    b.alu(AluOp::And, R::R9, R::R9, R::R11);
    b.alui(AluOp::Add, R::RDI, R::RDI, 1);
    b.alui(AluOp::And, R::RDI, R::RDI, (len - 1) as i64);
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

fn emit_ptr_chase(ctx: &mut KernelCtx<'_>) -> Label {
    let nodes = 1u64 << ctx.rng.gen_range(12..=14); // 32–128 KiB of nodes
    let steps = ctx.jitter(256, 256);
    // Half of the lists are sequentially allocated (next = this + 8): their
    // pointer values are stride-predictable, the classic LVP win on linked
    // structures. The rest are randomly permuted (unpredictable).
    let sequential = ctx.rng.gen_bool(0.5);
    let order: Vec<u64> = if sequential {
        (1..nodes).collect()
    } else {
        let mut v: Vec<u64> = (1..nodes).collect();
        for i in (1..v.len()).rev() {
            let j = ctx.rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    };
    let b = &mut *ctx.b;
    let base = b.alloc_region(nodes);
    let mut cur = 0u64;
    for &nxt in &order {
        b.init_u64(base + cur * 8, base + nxt * 8);
        cur = nxt;
    }
    b.init_u64(base + cur * 8, base);
    let g_head = b.alloc_global(base);

    let f = b.label();
    b.bind(f);
    b.load_rip(R::RAX, g_head); // global-stable head pointer
    b.movi(R::RCX, 0);
    let top = b.bind_new_label();
    b.load(R::RAX, MemRef::base_disp(R::RAX, 0)); // dependent chase
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, steps, top);
    b.ret();
    f
}

fn emit_hash_probe(ctx: &mut KernelCtx<'_>) -> Label {
    let len = 1u64 << ctx.rng.gen_range(13..=16); // 64–512 KiB table
    let iters = ctx.jitter(96, 96);
    let seed = ctx.rng.gen::<u64>();
    let b = &mut *ctx.b;
    let tab = alloc_array(b, len, |i| {
        // Value-unpredictable contents.
        (i ^ seed).wrapping_mul(0xff51_afd7_ed55_8ccd)
    });
    let g_tab = b.alloc_global(tab);
    let g_salt = b.alloc_global(seed | 1);

    let f = b.label();
    b.bind(f);
    b.load_rip(R::R8, g_tab); // global-stable table base
    b.load_rip(R::R9, g_salt); // global-stable salt
    b.movi(R::RCX, 0);
    b.movi(R::R13, 0);
    b.movi(R::R14, 0x9e37);
    let top = b.bind_new_label();
    // The next index depends on the previously loaded value — the serial
    // probe chain real hash tables exhibit; cache misses stall it and
    // wakeups arrive in bursts.
    b.alu(AluOp::Xor, R::R10, R::R14, R::R9);
    b.alu(AluOp::Mul, R::R10, R::R10, R::R9);
    b.alui(AluOp::Shr, R::R10, R::R10, 17);
    b.alui(AluOp::And, R::R10, R::R10, (len - 1) as i64);
    b.load(R::R11, MemRef::base_index(R::R8, R::R10, 8, 0)); // random probe
                                                             // Second probe to the adjacent bucket (open addressing).
    b.alui(AluOp::Add, R::R10, R::R10, 1);
    b.alui(AluOp::And, R::R10, R::R10, (len - 1) as i64);
    b.load(R::R12, MemRef::base_index(R::R8, R::R10, 8, 0));
    b.alu(AluOp::Xor, R::R14, R::R11, R::R12);
    b.alui(AluOp::And, R::R12, R::R11, 1);
    let skip = b.label();
    b.br_imm(CondCode::Eq, R::R12, 0, skip); // data-dependent branch
    b.alu(AluOp::Add, R::R13, R::R13, R::R11);
    b.bind(skip);
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

fn emit_call_heavy(ctx: &mut KernelCtx<'_>) -> Label {
    let apx = ctx.b.apx();
    let iters = ctx.jitter(48, 48);
    let b = &mut *ctx.b;
    let g_cfg1 = b.alloc_global(0xc0ffee);
    let g_cfg2 = b.alloc_global(0xf00d);
    let g_cfg3 = b.alloc_global(0xbeef);
    let g_cfg4 = b.alloc_global(0x1abe1);
    let g_cfg5 = b.alloc_global(0x7ab1e);
    let scratch = alloc_array(b, 64, |i| i * 13 + 5);

    // Small callee 1: reloads a runtime constant and a per-call stack spill.
    let g1 = b.label();
    b.bind(g1);
    b.alui(AluOp::Sub, R::RSP, R::RSP, 0x20);
    if !apx {
        b.store(R::RSI, MemRef::base_disp(R::RSP, 0x8)); // spill (silent when RSI constant)
    }
    b.load_rip(R::RAX, g_cfg1); // global-stable
    if !apx {
        b.load(R::RCX, MemRef::base_disp(R::RSP, 0x8)); // reload spill
    } else {
        b.mov(R::RCX, R::RSI);
    }
    b.alu(AluOp::Add, R::RAX, R::RAX, R::RCX);
    b.alui(AluOp::Add, R::RSP, R::RSP, 0x20);
    b.ret();

    // Small callee 2: a burst of independent configuration loads — the
    // argument-marshalling / object-field-copy pattern that saturates load
    // ports (Fig 2's resource-dependence scenario).
    let g2 = b.label();
    b.bind(g2);
    b.load_rip(R::RDX, g_cfg2); // global-stable
    b.alui(AluOp::And, R::R11, R::RCX, 63);
    b.load_rip(R::R8, g_cfg3); // global-stable
    b.lea(R::R12, MemRef::rip(scratch));
    b.load_rip(R::R9, g_cfg4); // global-stable
    b.alu(AluOp::Add, R::RDX, R::RDX, R::R8);
    b.load_rip(R::R10, g_cfg5); // global-stable
    b.alu(AluOp::Xor, R::RDX, R::RDX, R::R9);
    b.load(R::R13, MemRef::base_index(R::R12, R::R11, 8, 0)); // non-stable
    b.alu(AluOp::Add, R::RDX, R::RDX, R::R10);
    b.alu(AluOp::Xor, R::RAX, R::RAX, R::RDX);
    b.alu(AluOp::Add, R::RAX, R::RAX, R::R13);
    b.ret();

    let f = b.label();
    b.bind(f);
    b.movi(R::RCX, 0);
    b.movi(R::RSI, 0x51);
    let top = b.bind_new_label();
    b.store(R::RCX, MemRef::base_disp(R::RBP, -0x10)); // save loop counter
    b.call(g1);
    b.call(g2);
    b.alui(AluOp::Add, R::RAX, R::RAX, 3);
    b.load(R::RCX, MemRef::base_disp(R::RBP, -0x10)); // restore (MRN-friendly)
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

fn emit_matrix(ctx: &mut KernelCtx<'_>) -> Label {
    let cols = 1i64 << ctx.rng.gen_range(7..=8);
    let rows = ctx.jitter(2, 1);
    let b = &mut *ctx.b;
    let a = alloc_array(b, cols as u64, |i| 3 + i * 5);
    let c = alloc_array(b, cols as u64, |i| 7 + i * 2);
    let d = b.alloc_region(cols as u64);

    let f = b.label();
    b.bind(f);
    b.alui(AluOp::Sub, R::RSP, R::RSP, 0x30);
    // Per-call spilled bound, reloaded each outer iteration: a short
    // store→load pair Memory Renaming learns to forward.
    b.movi(R::R8, rows as u64);
    b.store(R::R8, MemRef::base_disp(R::RSP, 0x10));
    b.movi(R::RDI, 0);
    let outer = b.bind_new_label();
    b.load(R::R8, MemRef::base_disp(R::RSP, 0x10)); // MRN target
    b.lea(R::R9, MemRef::rip(a));
    b.lea(R::R10, MemRef::rip(c));
    b.lea(R::R11, MemRef::rip(d));
    b.movi(R::RSI, 0);
    b.movi(R::RDX, 0);
    let inner = b.bind_new_label();
    b.load(R::R12, MemRef::base_index(R::R9, R::RSI, 8, 0)); // stride values
    b.load(R::R13, MemRef::base_index(R::R10, R::RSI, 8, 0)); // stride values
    b.alu(AluOp::Mul, R::R12, R::R12, R::R13);
    b.alu(AluOp::Add, R::RDX, R::RDX, R::R12);
    b.store(R::RDX, MemRef::base_index(R::R11, R::RSI, 8, 0));
    b.alui(AluOp::Add, R::RSI, R::RSI, 1);
    b.br_imm(CondCode::Lt, R::RSI, cols, inner);
    b.alui(AluOp::Add, R::RDI, R::RDI, 1);
    b.br(CondCode::Lt, R::RDI, R::R8, outer);
    b.alui(AluOp::Add, R::RSP, R::RSP, 0x30);
    b.ret();
    f
}

fn emit_branchy(ctx: &mut KernelCtx<'_>) -> Label {
    let len = 1u64 << 10;
    let iters = ctx.jitter(128, 128);
    let seed = ctx.rng.gen::<u64>();
    let b = &mut *ctx.b;
    let arr = alloc_array(b, len, |i| (i ^ seed).wrapping_mul(0x2545_f491_4f6c_dd1d));
    let g_k = b.alloc_global(0xabcd);

    let f = b.label();
    b.bind(f);
    b.lea(R::R8, MemRef::rip(arr));
    b.movi(R::RCX, 0);
    b.movi(R::R12, 0);
    let top = b.bind_new_label();
    b.alui(AluOp::And, R::R9, R::RCX, (len - 1) as i64);
    b.load(R::R10, MemRef::base_index(R::R8, R::R9, 8, 0));
    b.alui(AluOp::And, R::R11, R::R10, 3);
    let alt = b.label();
    let join = b.label();
    b.br_imm(CondCode::Eq, R::R11, 0, alt); // ~25% taken, data-dependent
    b.alu(AluOp::Add, R::R12, R::R12, R::R10);
    b.jmp(join);
    b.bind(alt);
    b.alu(AluOp::Sub, R::R12, R::R12, R::R10);
    b.bind(join);
    b.load_rip(R::RAX, g_k); // global-stable
    b.alu(AluOp::Xor, R::R12, R::R12, R::RAX);
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

fn emit_churn(ctx: &mut KernelCtx<'_>) -> Label {
    let iters = ctx.jitter(192, 128);
    let b = &mut *ctx.b;
    let g_phase = b.alloc_global(0x11); // rewritten every call: phase-stable only
    let g_fixed = b.alloc_global(0x5a5a); // never written: global-stable

    let f = b.label();
    b.bind(f);
    // Advance the phase value, killing stability across invocations.
    b.load_rip(R::RAX, g_phase);
    b.alui(AluOp::Add, R::RAX, R::RAX, 1);
    b.store(R::RAX, MemRef::rip(g_phase));
    b.movi(R::RCX, 0);
    b.movi(R::R10, 0);
    let top = b.bind_new_label();
    b.load_rip(R::RDX, g_phase); // stable *within* this call only
    b.load_rip(R::R8, g_fixed); // global-stable
    b.alu(AluOp::Add, R::R10, R::R10, R::RDX);
    b.alu(AluOp::Xor, R::R10, R::R10, R::R8);
    b.alui(AluOp::Add, R::RCX, R::RCX, 1);
    b.br_imm(CondCode::Lt, R::RCX, iters, top);
    b.ret();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;
    use rand::SeedableRng;
    use sim_isa::OpKind;

    fn harness(kind: KernelKind) -> (crate::program::Program, u32) {
        let mut b = ProgramBuilder::new("kernel-test");
        let mut rng = SmallRng::seed_from_u64(7);
        let f = {
            let mut ctx = KernelCtx {
                b: &mut b,
                rng: &mut rng,
            };
            emit_kernel(kind, &mut ctx)
        };
        b.set_entry();
        b.alui(AluOp::Sub, R::RSP, R::RSP, MAIN_FRAME);
        b.mov(R::RBP, R::RSP);
        // Argument slots for InlinedArgs live in the initial stack image.
        let rbp = crate::program::STACK_TOP - MAIN_FRAME as u64;
        b.init_u64(rbp + ARG_SLOT_DISP as u64, 0xa1);
        b.init_u64(rbp + ARG_SLOT_DISP as u64 + 8, 0xa2);
        b.init_u64(rbp + ARG_SLOT_DISP as u64 + 16, 0xa3);
        let loop_top = b.bind_new_label();
        b.call(f);
        b.jmp(loop_top);
        let entry = b.here();
        (b.build(), entry)
    }

    #[test]
    fn every_kernel_executes_without_stack_drift() {
        for kind in KernelKind::ALL {
            let (p, _) = harness(kind);
            let mut m = Machine::new(&p);
            let rsp0 = crate::program::STACK_TOP - MAIN_FRAME as u64;
            let mut calls = 0;
            for _ in 0..50_000u32 {
                let rec = m.step();
                let inst = p.inst(rec.sidx);
                if let OpKind::Branch(sim_isa::BranchKind::Ret) = inst.kind {
                    calls += 1;
                    if calls >= 3 {
                        break;
                    }
                }
            }
            assert!(calls >= 3, "{kind:?}: kernel never returned three times");
            // After each return to the main loop RSP must be back at the
            // main frame — any drift means a broken prologue/epilogue.
            assert_eq!(m.reg(R::RSP), rsp0, "{kind:?}: stack pointer drifted");
        }
    }

    #[test]
    fn global_const_kernel_has_stable_loads() {
        let (p, _) = harness(KernelKind::GlobalConst);
        let mut m = Machine::new(&p);
        let mut seen: std::collections::HashMap<u32, (u64, u64, bool)> = Default::default();
        for _ in 0..20_000 {
            let rec = m.step();
            if p.inst(rec.sidx).is_load() {
                let acc = rec.mem.unwrap();
                let e = seen.entry(rec.sidx).or_insert((acc.addr, acc.value, true));
                if e.0 != acc.addr || e.1 != acc.value {
                    e.2 = false;
                }
            }
        }
        let stable = seen.values().filter(|e| e.2).count();
        assert!(stable >= 4, "expected ≥4 stable static loads, saw {stable}");
    }

    #[test]
    fn churn_kernel_phase_load_changes_across_calls() {
        let (p, _) = harness(KernelKind::Churn);
        let mut m = Machine::new(&p);
        let mut values = std::collections::HashSet::new();
        for _ in 0..50_000 {
            let rec = m.step();
            if p.inst(rec.sidx).is_load() {
                values.insert(rec.mem.unwrap().value);
            }
        }
        assert!(
            values.len() > 2,
            "churn kernel must produce changing values"
        );
    }
}
