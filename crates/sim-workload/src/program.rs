//! Synthetic program representation and builder.
//!
//! A [`Program`] is a fixed-width sequence of [`StaticInst`]s plus an initial
//! data image — the moral equivalent of the paper's workload *trace snapshot*
//! ("a snapshot of the processor and the memory state", §8.3). Programs are
//! produced by [`ProgramBuilder`], which provides a tiny assembler-like API
//! with labels and fix-ups used by the kernel templates in
//! [`crate::kernels`].

use sim_isa::{AluOp, ArchReg, BranchKind, CondCode, MemRef, OpKind, Pc, StaticInst};

/// Base of the global data segment in generated programs.
pub const DATA_BASE: u64 = 0x60_0000;
/// Initial stack pointer in generated programs (grows down).
pub const STACK_TOP: u64 = 0x7fff_0000;

/// A branch-target label handed out by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A complete generated program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<StaticInst>,
    entry: u32,
    data_init: Vec<(u64, u64)>,
    apx: bool,
    /// Lazily-built prototype of the initial memory image (see
    /// `Program::data_image` in `exec.rs`): every `Machine::new` clones
    /// this instead of replaying `data_init` write by write.
    pub(crate) image: std::sync::OnceLock<crate::exec::Memory>,
}

impl Program {
    /// The program's display name (workload/trace name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All static instructions.
    pub fn insts(&self) -> &[StaticInst] {
        &self.insts
    }

    /// The static instruction at index `idx`, wrapping past the end
    /// (used by wrong-path fetch, which may run off the text segment).
    pub fn inst(&self, idx: u32) -> &StaticInst {
        &self.insts[idx as usize % self.insts.len()]
    }

    /// Whether `idx` is a valid (non-wrapped) static index.
    pub fn contains_index(&self, idx: u32) -> bool {
        (idx as usize) < self.insts.len()
    }

    /// Index of the entry instruction.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Initial memory image as `(address, u64 value)` pairs.
    pub fn data_init(&self) -> &[(u64, u64)] {
        &self.data_init
    }

    /// Whether this program was generated for the 32-register APX study.
    pub fn apx(&self) -> bool {
        self.apx
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of static load instructions.
    pub fn static_loads(&self) -> usize {
        self.insts.iter().filter(|i| i.is_load()).count()
    }
}

/// Incremental builder for [`Program`]s.
///
/// ```
/// use sim_workload::ProgramBuilder;
/// use sim_isa::{ArchReg, CondCode};
///
/// let mut b = ProgramBuilder::new("demo");
/// let g = b.alloc_global(42);
/// b.set_entry();
/// let top = b.bind_new_label();
/// b.load_rip(ArchReg::RAX, g);
/// b.alui(sim_isa::AluOp::Add, ArchReg::RCX, ArchReg::RCX, 1);
/// b.br_imm(CondCode::Lt, ArchReg::RCX, 1_000_000, top);
/// b.jmp(top);
/// let p = b.build();
/// assert_eq!(p.static_loads(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<StaticInst>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    data_init: Vec<(u64, u64)>,
    next_data: u64,
    entry: Option<u32>,
    apx: bool,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            data_init: Vec::new(),
            next_data: DATA_BASE,
            entry: None,
            apx: false,
        }
    }

    /// Enables APX mode (32 architectural registers) for this program.
    pub fn with_apx(mut self, apx: bool) -> Self {
        self.apx = apx;
        self
    }

    /// Whether this builder targets APX (32-register) mode.
    pub fn apx(&self) -> bool {
        self.apx
    }

    /// Index the next emitted instruction will get.
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Marks the next emitted instruction as the program entry point.
    pub fn set_entry(&mut self) {
        self.entry = Some(self.here());
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Convenience: creates a label bound right here.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Allocates an 8-byte global initialized to `value`; returns its address.
    pub fn alloc_global(&mut self, value: u64) -> u64 {
        let addr = self.next_data;
        self.next_data += 8;
        self.data_init.push((addr, value));
        addr
    }

    /// Allocates `len` u64 slots; returns the base address. Slots are zeroed
    /// unless initialized via [`ProgramBuilder::init_u64`].
    pub fn alloc_region(&mut self, len: u64) -> u64 {
        let addr = self.next_data;
        // Pad to cacheline so regions don't share lines by accident.
        self.next_data += (len * 8).div_ceil(64) * 64;
        addr
    }

    /// Records an initial 8-byte memory value.
    pub fn init_u64(&mut self, addr: u64, value: u64) {
        self.data_init.push((addr, value));
    }

    fn push(&mut self, inst: StaticInst) -> u32 {
        let idx = self.here();
        self.insts.push(inst);
        idx
    }

    /// Emits `dst = [mem]` (8-byte load).
    pub fn load(&mut self, dst: ArchReg, mem: MemRef) -> u32 {
        let idx = self.here();
        self.push(StaticInst::new(idx, OpKind::Load { mem, size: 8 }).with_dst(dst))
    }

    /// Emits a RIP-relative load of the global at `addr`.
    pub fn load_rip(&mut self, dst: ArchReg, addr: u64) -> u32 {
        self.load(dst, MemRef::rip(addr))
    }

    /// Emits `[mem] = src` (8-byte store).
    pub fn store(&mut self, src: ArchReg, mem: MemRef) -> u32 {
        let idx = self.here();
        self.push(StaticInst::new(idx, OpKind::Store { mem, size: 8 }).with_srcs(Some(src), None))
    }

    /// Emits `dst = op(a, b)`.
    pub fn alu(&mut self, op: AluOp, dst: ArchReg, a: ArchReg, b: ArchReg) -> u32 {
        let idx = self.here();
        self.push(
            StaticInst::new(idx, OpKind::Alu(op))
                .with_srcs(Some(a), Some(b))
                .with_dst(dst),
        )
    }

    /// Emits `dst = op(a, imm)`.
    pub fn alui(&mut self, op: AluOp, dst: ArchReg, a: ArchReg, imm: i64) -> u32 {
        let idx = self.here();
        self.push(
            StaticInst::new(idx, OpKind::Alu(op))
                .with_srcs(Some(a), None)
                .with_dst(dst)
                .with_imm(imm),
        )
    }

    /// Emits `dst = imm`.
    pub fn movi(&mut self, dst: ArchReg, imm: u64) -> u32 {
        let idx = self.here();
        self.push(
            StaticInst::new(idx, OpKind::MovImm)
                .with_dst(dst)
                .with_imm(imm as i64),
        )
    }

    /// Emits `dst = src` (move-elimination candidate).
    pub fn mov(&mut self, dst: ArchReg, src: ArchReg) -> u32 {
        let idx = self.here();
        self.push(
            StaticInst::new(idx, OpKind::Mov)
                .with_srcs(Some(src), None)
                .with_dst(dst),
        )
    }

    /// Emits `dst = &mem` (address computation only).
    pub fn lea(&mut self, dst: ArchReg, mem: MemRef) -> u32 {
        let idx = self.here();
        self.push(StaticInst::new(idx, OpKind::Lea(mem)).with_dst(dst))
    }

    /// Emits a conditional branch `if cc(a, b) goto label`.
    pub fn br(&mut self, cc: CondCode, a: ArchReg, b: ArchReg, label: Label) -> u32 {
        let idx = self.here();
        self.fixups.push((idx as usize, label));
        self.push(
            StaticInst::new(idx, OpKind::Branch(BranchKind::Cond { cc, target: 0 }))
                .with_srcs(Some(a), Some(b)),
        )
    }

    /// Emits a conditional branch `if cc(a, imm) goto label`.
    pub fn br_imm(&mut self, cc: CondCode, a: ArchReg, imm: i64, label: Label) -> u32 {
        let idx = self.here();
        self.fixups.push((idx as usize, label));
        self.push(
            StaticInst::new(idx, OpKind::Branch(BranchKind::Cond { cc, target: 0 }))
                .with_srcs(Some(a), None)
                .with_imm(imm),
        )
    }

    /// Emits an unconditional jump.
    pub fn jmp(&mut self, label: Label) -> u32 {
        let idx = self.here();
        self.fixups.push((idx as usize, label));
        self.push(StaticInst::new(
            idx,
            OpKind::Branch(BranchKind::Jump { target: 0 }),
        ))
    }

    /// Emits a direct call.
    pub fn call(&mut self, label: Label) -> u32 {
        let idx = self.here();
        self.fixups.push((idx as usize, label));
        self.push(StaticInst::new(
            idx,
            OpKind::Branch(BranchKind::Call { target: 0 }),
        ))
    }

    /// Emits a return.
    pub fn ret(&mut self) -> u32 {
        let idx = self.here();
        self.push(StaticInst::new(idx, OpKind::Branch(BranchKind::Ret)))
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> u32 {
        let idx = self.here();
        self.push(StaticInst::new(idx, OpKind::Nop))
    }

    /// Resolves fix-ups and produces the program.
    ///
    /// # Panics
    /// Panics if any label is unbound or no entry point was set.
    pub fn build(mut self) -> Program {
        for (inst_idx, label) in &self.fixups {
            let target = self.labels[label.0].expect("unbound label at build time");
            let inst = &mut self.insts[*inst_idx];
            inst.kind = match inst.kind {
                OpKind::Branch(BranchKind::Cond { cc, .. }) => {
                    OpKind::Branch(BranchKind::Cond { cc, target })
                }
                OpKind::Branch(BranchKind::Jump { .. }) => {
                    OpKind::Branch(BranchKind::Jump { target })
                }
                OpKind::Branch(BranchKind::Call { .. }) => {
                    OpKind::Branch(BranchKind::Call { target })
                }
                other => panic!("fixup on non-branch instruction: {other:?}"),
            };
        }
        let entry = self.entry.expect("program entry not set");
        assert!(
            (entry as usize) < self.insts.len(),
            "entry beyond last instruction"
        );
        Program {
            name: self.name,
            image: std::sync::OnceLock::new(),
            insts: self.insts,
            entry,
            data_init: self.data_init,
            apx: self.apx,
        }
    }
}

/// Resolved branch target of a static instruction, if it is a direct branch.
pub fn direct_target(inst: &StaticInst) -> Option<Pc> {
    match inst.kind {
        OpKind::Branch(BranchKind::Cond { target, .. })
        | OpKind::Branch(BranchKind::Jump { target })
        | OpKind::Branch(BranchKind::Call { target }) => Some(Pc::from_index(target)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new("t");
        b.set_entry();
        let back = b.bind_new_label();
        let fwd = b.label();
        b.jmp(fwd);
        b.jmp(back);
        b.bind(fwd);
        b.nop();
        let p = b.build();
        assert_eq!(direct_target(&p.insts()[0]), Some(Pc::from_index(2)));
        assert_eq!(direct_target(&p.insts()[1]), Some(Pc::from_index(0)));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_build() {
        let mut b = ProgramBuilder::new("t");
        b.set_entry();
        let l = b.label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "entry not set")]
    fn missing_entry_panics() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        let _ = b.build();
    }

    #[test]
    fn globals_are_cacheline_padded_regions() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_region(1);
        let c = b.alloc_region(1);
        assert_eq!(a % 64, 0);
        assert_eq!(c - a, 64);
    }

    #[test]
    fn inst_wraps_for_wrong_path_fetch() {
        let mut b = ProgramBuilder::new("t");
        b.set_entry();
        b.nop();
        b.nop();
        let p = b.build();
        assert_eq!(p.inst(5).pc, Pc::from_index(1));
        assert!(p.contains_index(1));
        assert!(!p.contains_index(2));
    }
}
