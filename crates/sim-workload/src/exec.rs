//! Functional executor.
//!
//! [`Machine`] executes a [`Program`] architecturally — registers, a sparse
//! paged memory, and a shadow return-address stack — producing one
//! [`DynInst`] record per step. The cycle-accurate core consumes this stream
//! for timing, and its retire-stage *golden check* (§8.5 of the paper)
//! validates every load (including Constable-eliminated loads) against these
//! functional outcomes.

use crate::program::{Program, STACK_TOP};
use sim_isa::{ArchReg, BranchKind, CodecError, Dec, DynInst, Enc, MemAccess, OpKind, Pc};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiply-rotate hasher for page numbers (the same policy `sim-core`
/// uses for its PC-keyed maps): SipHash cost per page translation is pure
/// overhead for simulator-internal integer keys.
#[derive(Debug, Default, Clone)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

/// Page number that cannot occur (addresses are < 2^52 pages).
const NO_PAGE: u64 = u64::MAX;

/// Sparse byte-addressable memory backed by 4 KiB pages.
///
/// Page payloads live in one slab (`pages`); a fast-hash map translates
/// page numbers to slab slots, and a one-entry MRU memo short-circuits the
/// translation for the page-local access runs the functional stream is
/// made of. Reads and writes resolve their page **once per access** (twice
/// when straddling a boundary), not once per byte. Reads of untouched
/// memory return zero, matching the "snapshot" semantics of trace-driven
/// simulation.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Page payloads, one contiguous slab (`slot * PAGE_SIZE ..`): cloning
    /// a machine's image — every `Machine::new` clones its program's
    /// prototype — is a single allocation and memcpy instead of one per
    /// page.
    pages: Vec<u8>,
    index: HashMap<u64, u32, BuildHasherDefault<PageHasher>>,
    mru_page: u64,
    mru_slot: u32,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            pages: Vec::new(),
            index: HashMap::default(),
            mru_page: NO_PAGE,
            mru_slot: 0,
        }
    }

    /// Slab slot of `page`, if mapped.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<u32> {
        if self.mru_page == page {
            return Some(self.mru_slot);
        }
        self.index.get(&page).copied()
    }

    /// Slab slot of `page`, mapping a fresh zero page if needed.
    #[inline]
    fn slot_or_map(&mut self, page: u64) -> u32 {
        if self.mru_page == page {
            return self.mru_slot;
        }
        let slot = match self.index.get(&page) {
            Some(&s) => s,
            None => {
                let s = (self.pages.len() / PAGE_SIZE) as u32;
                self.pages.resize(self.pages.len() + PAGE_SIZE, 0);
                self.index.insert(page, s);
                s
            }
        };
        self.mru_page = page;
        self.mru_slot = slot;
        slot
    }

    /// Reads `size` bytes (≤ 8) at `addr` as a little-endian integer.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + usize::from(size) <= PAGE_SIZE {
            // Common case: the whole span lives in one page.
            let Some(slot) = self.slot_of(addr >> PAGE_SHIFT) else {
                return 0;
            };
            let base = slot as usize * PAGE_SIZE;
            let mut buf = [0u8; 8];
            buf[..usize::from(size)]
                .copy_from_slice(&self.pages[base + off..base + off + usize::from(size)]);
            return u64::from_le_bytes(buf);
        }
        // Page-straddling access: assemble byte-wise.
        let mut v = 0u64;
        for i in 0..u64::from(size) {
            let a = addr + i;
            let b = match self.slot_of(a >> PAGE_SHIFT) {
                Some(s) => self.pages[s as usize * PAGE_SIZE + ((a as usize) & (PAGE_SIZE - 1))],
                None => 0,
            };
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    /// Like [`Memory::read`], but refreshes the MRU page memo — the hot
    /// path the executor uses, where the next access is very likely on the
    /// same page. `read` itself stays `&self` for analysis callers.
    fn read_hot(&mut self, addr: u64, size: u8) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + usize::from(size) <= PAGE_SIZE {
            let page_no = addr >> PAGE_SHIFT;
            let Some(slot) = self.slot_of(page_no) else {
                return 0;
            };
            self.mru_page = page_no;
            self.mru_slot = slot;
            let base = slot as usize * PAGE_SIZE;
            let mut buf = [0u8; 8];
            buf[..usize::from(size)]
                .copy_from_slice(&self.pages[base + off..base + off + usize::from(size)]);
            return u64::from_le_bytes(buf);
        }
        self.read(addr, size)
    }

    /// Writes the low `size` bytes (≤ 8) of `value` at `addr`, little-endian.
    pub fn write(&mut self, addr: u64, value: u64, size: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + usize::from(size) <= PAGE_SIZE {
            let slot = self.slot_or_map(addr >> PAGE_SHIFT);
            let base = slot as usize * PAGE_SIZE;
            self.pages[base + off..base + off + usize::from(size)]
                .copy_from_slice(&value.to_le_bytes()[..usize::from(size)]);
            return;
        }
        for i in 0..u64::from(size) {
            let a = addr + i;
            let slot = self.slot_or_map(a >> PAGE_SHIFT);
            self.pages[slot as usize * PAGE_SIZE + ((a as usize) & (PAGE_SIZE - 1))] =
                (value >> (8 * i)) as u8;
        }
    }

    /// Number of touched pages.
    pub fn page_count(&self) -> usize {
        self.pages.len() / PAGE_SIZE
    }

    /// Encodes the full page slab for a checkpoint.
    ///
    /// Pages are written in ascending page-number order regardless of the
    /// slab's historical allocation order, so encode → decode → encode is
    /// byte-stable; the MRU memo is a pure cache and is not encoded.
    pub fn encode(&self, e: &mut Enc) {
        let mut pages: Vec<(u64, u32)> = self.index.iter().map(|(&p, &s)| (p, s)).collect();
        pages.sort_unstable_by_key(|&(p, _)| p);
        e.seq_len(pages.len());
        for (page, slot) in pages {
            e.u64(page);
            e.raw(&self.pages[slot as usize * PAGE_SIZE..(slot as usize + 1) * PAGE_SIZE]);
        }
    }

    /// Decodes a memory image written by [`Memory::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Memory, CodecError> {
        let n = d.seq_len()?;
        let mut mem = Memory::new();
        mem.pages.reserve_exact(n * PAGE_SIZE);
        for slot in 0..n {
            let page = d.u64()?;
            mem.pages.extend_from_slice(d.raw(PAGE_SIZE)?);
            mem.index.insert(page, slot as u32);
        }
        Ok(mem)
    }
}

/// The architectural machine state executing a program.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [u64; ArchReg::NUM_APX],
    mem: Memory,
    /// Shadow return-address stack for Call/Ret (see `sim_isa::BranchKind`).
    ras: Vec<u32>,
    pc_idx: u32,
    seq: u64,
}

impl Program {
    /// The initial data image as a prototype [`Memory`], built once per
    /// program and cloned by every [`Machine::new`]. Cloning the page slab
    /// is straight memcpys; replaying `data_init` paid a page translation
    /// per entry — tens of thousands of entries on the bigger kernels,
    /// once per simulation run across the whole sweep layer.
    fn data_image(&self) -> &Memory {
        self.image.get_or_init(|| {
            let mut mem = Memory::new();
            for &(addr, value) in self.data_init() {
                mem.write(addr, value, 8);
            }
            mem
        })
    }
}

impl<'p> Machine<'p> {
    /// Creates a machine at the program entry with the initial data image
    /// applied (cloned from the program's cached prototype) and RSP
    /// pointing at the stack top.
    pub fn new(program: &'p Program) -> Self {
        let mem = program.data_image().clone();
        let mut regs = [0u64; ArchReg::NUM_APX];
        regs[ArchReg::RSP.index()] = STACK_TOP;
        regs[ArchReg::RBP.index()] = STACK_TOP;
        Machine {
            program,
            regs,
            mem,
            ras: Vec::new(),
            pc_idx: program.entry(),
            seq: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current architectural value of `reg`.
    pub fn reg(&self, reg: ArchReg) -> u64 {
        self.regs[reg.index()]
    }

    /// Reads architectural memory (for verification / analysis).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.seq
    }

    /// Executes one instruction and returns its dynamic record.
    ///
    /// Execution never ends: generated programs loop forever and the caller
    /// decides when to stop. If the PC somehow runs past the text segment it
    /// wraps to the entry point (and the shadow stack is cleared).
    pub fn step(&mut self) -> DynInst {
        if !self.program.contains_index(self.pc_idx) {
            self.pc_idx = self.program.entry();
            self.ras.clear();
        }
        let inst = *self.program.inst(self.pc_idx);
        let pc = Pc::from_index(self.pc_idx);
        let mut rec = DynInst {
            seq: self.seq,
            sidx: self.pc_idx,
            pc,
            next_pc: pc.fallthrough(),
            taken: false,
            mem: None,
            dst_value: 0,
        };
        self.seq += 1;

        let src = |regs: &[u64; ArchReg::NUM_APX], slot: Option<ArchReg>| -> u64 {
            slot.map_or(0, |r| regs[r.index()])
        };

        match inst.kind {
            OpKind::Load { mem, size } => {
                let addr = mem.effective_addr(|r| self.regs[r.index()]);
                let value = self.mem.read_hot(addr, size);
                rec.mem = Some(MemAccess { addr, value, size });
                rec.dst_value = value;
                if let Some(d) = inst.dst {
                    self.regs[d.index()] = value;
                }
            }
            OpKind::Store { mem, size } => {
                let addr = mem.effective_addr(|r| self.regs[r.index()]);
                let value = src(&self.regs, inst.srcs[0]);
                self.mem.write(addr, value, size);
                rec.mem = Some(MemAccess { addr, value, size });
            }
            OpKind::Alu(op) => {
                let a = src(&self.regs, inst.srcs[0]);
                let b = inst.srcs[1].map_or(inst.imm as u64, |r| self.regs[r.index()]);
                let v = op.eval(a, b);
                rec.dst_value = v;
                if let Some(d) = inst.dst {
                    self.regs[d.index()] = v;
                }
            }
            OpKind::Lea(mem) => {
                let v = mem.effective_addr(|r| self.regs[r.index()]);
                rec.dst_value = v;
                if let Some(d) = inst.dst {
                    self.regs[d.index()] = v;
                }
            }
            OpKind::MovImm => {
                rec.dst_value = inst.imm as u64;
                if let Some(d) = inst.dst {
                    self.regs[d.index()] = inst.imm as u64;
                }
            }
            OpKind::Mov => {
                let v = src(&self.regs, inst.srcs[0]);
                rec.dst_value = v;
                if let Some(d) = inst.dst {
                    self.regs[d.index()] = v;
                }
            }
            OpKind::Branch(kind) => {
                let (taken, target) = match kind {
                    BranchKind::Cond { cc, target } => {
                        let a = src(&self.regs, inst.srcs[0]);
                        let b = inst.srcs[1].map_or(inst.imm as u64, |r| self.regs[r.index()]);
                        (cc.eval(a, b), target)
                    }
                    BranchKind::Jump { target } => (true, target),
                    BranchKind::Call { target } => {
                        self.ras.push(self.pc_idx + 1);
                        (true, target)
                    }
                    BranchKind::Ret => {
                        let target = self.ras.pop().unwrap_or(self.program.entry());
                        (true, target)
                    }
                    BranchKind::Indirect => {
                        let pc_val = src(&self.regs, inst.srcs[0]);
                        (true, Pc(pc_val).index())
                    }
                };
                rec.taken = taken;
                if taken {
                    rec.next_pc = Pc::from_index(target);
                }
            }
            OpKind::Nop => {}
        }

        self.pc_idx = rec.next_pc.index();
        rec
    }

    /// Runs `n` steps, returning the records (convenience for tests/analysis).
    pub fn run(&mut self, n: usize) -> Vec<DynInst> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Encodes the architectural state (registers, memory image, shadow
    /// return stack, PC, sequence counter) for a checkpoint. The program
    /// itself is *not* encoded — restore re-binds the same program, and the
    /// checkpoint header pins its identity.
    pub fn encode(&self, e: &mut Enc) {
        let Machine {
            program: _,
            regs,
            mem,
            ras,
            pc_idx,
            seq,
        } = self;
        for &r in regs.iter() {
            e.u64(r);
        }
        mem.encode(e);
        e.seq_len(ras.len());
        for &addr in ras {
            e.u32(addr);
        }
        e.u32(*pc_idx);
        e.u64(*seq);
    }

    /// Decodes a machine written by [`Machine::encode`], re-bound to
    /// `program` (which must be the same program that was checkpointed).
    pub fn decode(program: &'p Program, d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut regs = [0u64; ArchReg::NUM_APX];
        for r in regs.iter_mut() {
            *r = d.u64()?;
        }
        let mem = Memory::decode(d)?;
        let nras = d.seq_len()?;
        let mut ras = Vec::with_capacity(nras);
        for _ in 0..nras {
            ras.push(d.u32()?);
        }
        Ok(Machine {
            program,
            regs,
            mem,
            ras,
            pc_idx: d.u32()?,
            seq: d.u64()?,
        })
    }
}

/// A shared, trimmable tape of functional records, produced on demand.
///
/// The record stream is a pure function of the program: record `seq` is
/// identical no matter which consumer asks for it, or how many times.
/// `RecordStream` exploits that to let N timing models of the *same*
/// program (a config-lockstep sweep batch) share one [`Machine`] — one
/// data-image clone and one functional execution feed every member —
/// instead of each re-deriving the stream privately. Consumers pull by
/// absolute sequence number; once every consumer has advanced past a
/// record, [`RecordStream::trim`] drops the dead prefix so the buffer
/// tracks the *spread* between members, not the run length.
#[derive(Debug)]
pub struct RecordStream<'p> {
    machine: Machine<'p>,
    /// Produced-but-unretired records; `buf[0]` has sequence `base`.
    /// Invariant: `base + buf.len() == machine.executed()`.
    buf: std::collections::VecDeque<DynInst>,
    base: u64,
}

impl<'p> RecordStream<'p> {
    /// Opens a stream at the program entry (sequence 0).
    pub fn new(program: &'p Program) -> Self {
        RecordStream {
            machine: Machine::new(program),
            buf: std::collections::VecDeque::new(),
            base: 0,
        }
    }

    /// The record with sequence number `seq`, executing forward as needed.
    ///
    /// # Panics
    /// Panics (debug) if `seq` was already [`trim`](RecordStream::trim)med
    /// away — consumers must only trim below every live cursor.
    #[inline]
    pub fn get(&mut self, seq: u64) -> DynInst {
        debug_assert!(
            seq >= self.base,
            "record {seq} already trimmed (base {})",
            self.base
        );
        while self.machine.executed() <= seq {
            let rec = self.machine.step();
            self.buf.push_back(rec);
        }
        self.buf[(seq - self.base) as usize]
    }

    /// Drops every buffered record with sequence `< keep_from`. No-op when
    /// already trimmed at least that far.
    pub fn trim(&mut self, keep_from: u64) {
        while self.base < keep_from && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Records currently buffered (production frontier minus trim point).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Rebuilds a stream from checkpointed parts: a machine at the
    /// production frontier, the buffered records starting at sequence
    /// `base`, upholding `base + records.len() == machine.executed()`.
    pub fn from_parts(machine: Machine<'p>, records: Vec<DynInst>, base: u64) -> Self {
        assert_eq!(
            base + records.len() as u64,
            machine.executed(),
            "record stream parts violate the frontier invariant"
        );
        RecordStream {
            machine,
            buf: records.into(),
            base,
        }
    }

    /// The functional machine at the production frontier (for checkpoints).
    pub fn machine(&self) -> &Machine<'p> {
        &self.machine
    }

    /// Sequence number of the first buffered record.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Buffered records with sequence `>= seq`, in order (for checkpoints).
    ///
    /// # Panics
    /// Panics if `seq` was already trimmed away.
    pub fn records_from(&self, seq: u64) -> impl Iterator<Item = &DynInst> + '_ {
        assert!(
            seq >= self.base,
            "record {seq} already trimmed (base {})",
            self.base
        );
        self.buf.iter().skip((seq - self.base) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use sim_isa::{AluOp, CondCode, MemRef};

    #[test]
    fn memory_roundtrips_values() {
        let mut m = Memory::new();
        m.write(0x1000, 0xdead_beef_cafe_f00d, 8);
        assert_eq!(m.read(0x1000, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x1000, 4), 0xcafe_f00d);
        assert_eq!(m.read(0x2000, 8), 0, "untouched memory reads zero");
    }

    #[test]
    fn memory_handles_page_straddling_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles the first page boundary
        m.write(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    fn counting_loop() -> Program {
        // rcx = 0; loop: rcx += 1; if rcx < 5 goto loop; jmp exit_spin
        let mut b = ProgramBuilder::new("loop");
        b.set_entry();
        b.movi(ArchReg::RCX, 0);
        let top = b.bind_new_label();
        b.alui(AluOp::Add, ArchReg::RCX, ArchReg::RCX, 1);
        b.br_imm(CondCode::Lt, ArchReg::RCX, 5, top);
        let spin = b.bind_new_label();
        b.jmp(spin);
        b.build()
    }

    #[test]
    fn loop_executes_architecturally() {
        let p = counting_loop();
        let mut m = Machine::new(&p);
        // movi + 5 * (add + br): the first 4 branches are taken, the 5th not.
        let recs = m.run(11);
        assert_eq!(m.reg(ArchReg::RCX), 5);
        let branches: Vec<bool> = recs
            .iter()
            .filter(|r| p.inst(r.sidx).is_branch())
            .map(|r| r.taken)
            .collect();
        assert_eq!(branches, vec![true, true, true, true, false]);
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let mut b = ProgramBuilder::new("mem");
        let g = b.alloc_global(77);
        b.set_entry();
        b.load_rip(ArchReg::RAX, g);
        b.alui(AluOp::Add, ArchReg::RAX, ArchReg::RAX, 1);
        b.store(ArchReg::RAX, MemRef::rip(g));
        b.load_rip(ArchReg::RDX, g);
        let spin = b.bind_new_label();
        b.jmp(spin);
        let p = b.build();
        let mut m = Machine::new(&p);
        let recs = m.run(4);
        assert_eq!(recs[0].mem.unwrap().value, 77);
        assert_eq!(recs[2].mem.unwrap().value, 78);
        assert_eq!(recs[3].dst_value, 78);
    }

    #[test]
    fn call_and_ret_use_shadow_stack() {
        let mut b = ProgramBuilder::new("call");
        let f = b.label();
        b.set_entry();
        b.call(f);
        let after = b.here();
        b.movi(ArchReg::RAX, 9);
        let spin = b.bind_new_label();
        b.jmp(spin);
        b.bind(f);
        b.movi(ArchReg::RCX, 3);
        b.ret();
        let p = b.build();
        let mut m = Machine::new(&p);
        let recs = m.run(4);
        assert_eq!(recs[0].next_pc, Pc::from_index(3), "call jumps to f");
        assert_eq!(recs[2].next_pc, Pc::from_index(after), "ret returns");
        assert_eq!(m.reg(ArchReg::RAX), 9);
        assert_eq!(m.reg(ArchReg::RCX), 3);
    }

    #[test]
    fn stack_pointer_initialized() {
        let p = counting_loop();
        let m = Machine::new(&p);
        assert_eq!(m.reg(ArchReg::RSP), STACK_TOP);
    }

    #[test]
    fn machine_checkpoint_resumes_bit_exactly() {
        let p = crate::memory_stress(0xC4E0_1234).build();
        let mut straight = Machine::new(&p);
        let mut half = Machine::new(&p);
        let prefix = straight.run(5_000);
        let _ = half.run(2_500);

        let mut e = Enc::new();
        half.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let mut resumed = Machine::decode(&p, &mut d).unwrap();
        d.finish().unwrap();

        assert_eq!(resumed.executed(), 2_500);
        let tail = resumed.run(2_500);
        assert_eq!(&prefix[2_500..], &tail[..], "resumed records diverge");
        assert_eq!(resumed.regs, straight.regs);
        for rec in prefix.iter().filter_map(|r| r.mem) {
            assert_eq!(
                resumed.mem.read(rec.addr, rec.size),
                straight.mem.read(rec.addr, rec.size)
            );
        }
    }

    #[test]
    fn memory_encode_is_canonical_regardless_of_slot_order() {
        // Two memories with identical contents but different page allocation
        // order must encode identically (checkpoint byte-stability).
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write(0x1000, 7, 8);
        a.write(0x9000, 9, 8);
        b.write(0x9000, 9, 8);
        b.write(0x1000, 7, 8);
        let (mut ea, mut eb) = (Enc::new(), Enc::new());
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_eq!(ea.into_bytes(), eb.into_bytes());
    }

    #[test]
    fn stable_load_fetches_same_value_forever() {
        // The defining property Constable exploits: a RIP-relative load of a
        // never-written global returns identical (addr, value) every time.
        let mut b = ProgramBuilder::new("stable");
        let g = b.alloc_global(0x5eed);
        b.set_entry();
        let top = b.bind_new_label();
        b.load_rip(ArchReg::RAX, g);
        b.jmp(top);
        let p = b.build();
        let mut m = Machine::new(&p);
        for rec in m.run(100) {
            if let Some(acc) = rec.mem {
                assert_eq!(acc.addr, g);
                assert_eq!(acc.value, 0x5eed);
            }
        }
    }
}
