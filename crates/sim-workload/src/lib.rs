//! # sim-workload — synthetic programs and the workload suite
//!
//! The paper evaluates Constable on 90 proprietary workload traces (§8.3).
//! This crate is the from-scratch substitute: a tiny assembler-like
//! [`ProgramBuilder`], a library of kernel templates modeled on the paper's
//! root-cause analysis of *why* global-stable loads exist (§4.2), a
//! functional executor ([`Machine`]) that produces the dynamic instruction
//! stream with real architectural values, and a 90-trace [`suite`] organized
//! into the paper's five categories.
//!
//! ```
//! use sim_workload::{suite_subset, Machine};
//!
//! let spec = &suite_subset(1)[0];
//! let program = spec.build();
//! let mut machine = Machine::new(&program);
//! let rec = machine.step();
//! assert_eq!(rec.seq, 0);
//! ```

mod exec;
mod kernels;
mod program;
mod suite;

pub use exec::{Machine, Memory, RecordStream};
pub use kernels::{KernelCtx, KernelKind, ARG_SLOT_DISP, MAIN_FRAME};
pub use program::{direct_target, Label, Program, ProgramBuilder, DATA_BASE, STACK_TOP};
pub use suite::{memory_stress, suite, suite_subset, Category, WorkloadSpec};
