//! Stable Load Detector (SLD) — §6.1, §6.2.
//!
//! A PC-indexed set-associative table that (1) identifies likely-stable
//! loads by a confidence mechanism over past (address, value) outcomes,
//! (2) decides whether a load instance can be eliminated, and (3) supplies
//! the last-computed address and last-fetched value for eliminated loads.

use crate::config::ConstableConfig;
use sim_isa::{CodecError, Dec, Enc};

/// State recorded when a stack-relative load arms elimination: the rename
/// stage's stack-delta view of RSP. Elimination is only legal while the
/// renamer can prove RSP holds the same value as at arming time
/// (see DESIGN.md §5 "stack-delta-aware RMT").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StackState {
    /// Bumped on any non-foldable RSP write.
    pub epoch: u64,
    /// Cumulative folded `rsp ± imm` delta within the epoch.
    pub delta: i64,
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SldEntry {
    pub tag: u64,
    pub valid: bool,
    pub last_addr: u64,
    pub last_value: u64,
    pub confidence: u8,
    pub can_eliminate: bool,
    /// Stack-delta view captured when `can_eliminate` was set.
    pub stack_state: StackState,
    /// Whether the load reads RSP (stack state must match to eliminate).
    pub uses_rsp: bool,
    pub lru: u64,
}

/// Result of an SLD rename-stage lookup (steps 1–3 of Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SldDecision {
    /// No entry / not yet confident: execute normally.
    Normal,
    /// Confidence at threshold but `can_eliminate` not set: execute the load
    /// and mark it *likely-stable* so its writeback arms elimination.
    MarkLikelyStable,
    /// Eliminate: break data dependence with `value`, record `addr` in the
    /// load buffer for disambiguation.
    Eliminate { addr: u64, value: u64 },
}

/// The Stable Load Detector.
#[derive(Debug, Clone)]
pub struct Sld {
    sets: usize,
    ways: usize,
    threshold: u8,
    max_conf: u8,
    entries: Vec<SldEntry>,
    clock: u64,
}

impl Sld {
    /// Creates an SLD with the configured geometry.
    pub fn new(cfg: &ConstableConfig) -> Self {
        Sld {
            sets: cfg.sld_sets,
            ways: cfg.sld_ways,
            threshold: cfg.confidence_threshold,
            max_conf: cfg.confidence_max,
            entries: vec![SldEntry::default(); cfg.sld_sets * cfg.sld_ways],
            clock: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let set = self.set_of(pc);
        (0..self.ways)
            .map(|w| set * self.ways + w)
            .find(|&i| self.entries[i].valid && self.entries[i].tag == pc)
    }

    /// Rename-stage lookup for the load at `pc` (Fig 8 steps 1–3).
    ///
    /// `stack_state` is the renamer's current RSP view; a load that reads
    /// RSP is only eliminated when it matches the state captured at arming.
    pub fn lookup(&mut self, pc: u64, stack_state: StackState) -> SldDecision {
        self.clock += 1;
        let clock = self.clock;
        let Some(i) = self.find(pc) else {
            return SldDecision::Normal;
        };
        let e = &mut self.entries[i];
        e.lru = clock;
        if e.can_eliminate {
            if e.uses_rsp && e.stack_state != stack_state {
                // RSP provably differs from arming time: not safe.
                e.can_eliminate = false;
                return SldDecision::Normal;
            }
            SldDecision::Eliminate {
                addr: e.last_addr,
                value: e.last_value,
            }
        } else if e.confidence >= self.threshold {
            SldDecision::MarkLikelyStable
        } else {
            SldDecision::Normal
        }
    }

    /// Writeback-stage confidence update for a non-eliminated load (§6.2):
    /// +1 on (addr, value) match, halve otherwise. Allocates on first sight.
    /// Returns the updated confidence.
    pub fn train(&mut self, pc: u64, addr: u64, value: u64) -> u8 {
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self.find(pc) {
            let e = &mut self.entries[i];
            if e.last_addr == addr && e.last_value == value {
                e.confidence = (e.confidence + 1).min(self.max_conf);
            } else {
                e.confidence /= 2;
                e.can_eliminate = false;
            }
            e.last_addr = addr;
            e.last_value = value;
            e.lru = clock;
            return e.confidence;
        }
        // Allocate: LRU victim within the set.
        let set = self.set_of(pc);
        let victim = (0..self.ways)
            .map(|w| set * self.ways + w)
            .min_by_key(|&i| (self.entries[i].valid, self.entries[i].lru))
            .expect("sld set nonempty");
        self.entries[victim] = SldEntry {
            tag: pc,
            valid: true,
            last_addr: addr,
            last_value: value,
            confidence: 0,
            can_eliminate: false,
            stack_state: StackState::default(),
            uses_rsp: false,
            lru: clock,
        };
        0
    }

    /// Arms elimination for `pc` (Fig 8 step 6), recording the stack view.
    pub fn arm(&mut self, pc: u64, stack_state: StackState, uses_rsp: bool) -> bool {
        if let Some(i) = self.find(pc) {
            let e = &mut self.entries[i];
            e.can_eliminate = true;
            e.stack_state = stack_state;
            e.uses_rsp = uses_rsp;
            true
        } else {
            false
        }
    }

    /// Resets `can_eliminate` for `pc` (Fig 8 step 8). Returns whether an
    /// armed entry was actually reset (an SLD write-port consumer).
    pub fn reset_eliminate(&mut self, pc: u64) -> bool {
        if let Some(i) = self.find(pc) {
            let was = self.entries[i].can_eliminate;
            self.entries[i].can_eliminate = false;
            was
        } else {
            false
        }
    }

    /// Halves the confidence of `pc` (memory-ordering violation, Fig 10 G).
    pub fn punish(&mut self, pc: u64) {
        if let Some(i) = self.find(pc) {
            let e = &mut self.entries[i];
            e.confidence /= 2;
            e.can_eliminate = false;
        }
    }

    /// Clears all elimination state (context switch / page remap, §6.7.3).
    pub fn flush_elimination(&mut self) {
        for e in &mut self.entries {
            e.can_eliminate = false;
        }
    }

    /// Current confidence of `pc` (for tests/ablation).
    pub fn confidence(&self, pc: u64) -> Option<u8> {
        self.find(pc).map(|i| self.entries[i].confidence)
    }

    /// Whether `pc` is currently armed for elimination.
    pub fn armed(&self, pc: u64) -> bool {
        self.find(pc).is_some_and(|i| self.entries[i].can_eliminate)
    }

    /// Encodes the table for a checkpoint (geometry comes from the config).
    pub(crate) fn encode(&self, e: &mut Enc) {
        let Sld {
            sets: _,
            ways: _,
            threshold: _,
            max_conf: _,
            entries,
            clock,
        } = self;
        for entry in entries {
            let SldEntry {
                tag,
                valid,
                last_addr,
                last_value,
                confidence,
                can_eliminate,
                stack_state: StackState { epoch, delta },
                uses_rsp,
                lru,
            } = *entry;
            e.u64(tag);
            e.bool(valid);
            e.u64(last_addr);
            e.u64(last_value);
            e.u8(confidence);
            e.bool(can_eliminate);
            e.u64(epoch);
            e.i64(delta);
            e.bool(uses_rsp);
            e.u64(lru);
        }
        e.u64(*clock);
    }

    /// Decodes a table written by [`Sld::encode`] under the same config.
    pub(crate) fn decode(cfg: &ConstableConfig, d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut s = Sld::new(cfg);
        for entry in s.entries.iter_mut() {
            *entry = SldEntry {
                tag: d.u64()?,
                valid: d.bool()?,
                last_addr: d.u64()?,
                last_value: d.u64()?,
                confidence: d.u8()?,
                can_eliminate: d.bool()?,
                stack_state: StackState {
                    epoch: d.u64()?,
                    delta: d.i64()?,
                },
                uses_rsp: d.bool()?,
                lru: d.u64()?,
            };
        }
        s.clock = d.u64()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sld() -> Sld {
        Sld::new(&ConstableConfig::paper())
    }

    #[test]
    fn confidence_builds_to_threshold_then_marks_likely_stable() {
        let mut s = sld();
        let st = StackState::default();
        // First training allocates at 0; 30 matches reach the threshold.
        for _ in 0..=30 {
            s.train(0x400, 0x8000, 7);
        }
        assert_eq!(s.confidence(0x400), Some(30));
        assert_eq!(s.lookup(0x400, st), SldDecision::MarkLikelyStable);
    }

    #[test]
    fn armed_entry_eliminates_with_stored_outcome() {
        let mut s = sld();
        let st = StackState::default();
        for _ in 0..=30 {
            s.train(0x400, 0x8000, 7);
        }
        assert!(s.arm(0x400, st, false));
        assert_eq!(
            s.lookup(0x400, st),
            SldDecision::Eliminate {
                addr: 0x8000,
                value: 7
            }
        );
    }

    #[test]
    fn value_change_halves_confidence_and_disarms() {
        let mut s = sld();
        for _ in 0..=31 {
            s.train(0x400, 0x8000, 7);
        }
        s.arm(0x400, StackState::default(), false);
        let c = s.train(0x400, 0x8000, 8); // different value
        assert_eq!(c, 31 / 2);
        assert!(!s.armed(0x400));
    }

    #[test]
    fn address_change_also_halves() {
        let mut s = sld();
        for _ in 0..10 {
            s.train(0x400, 0x8000, 7);
        }
        let before = s.confidence(0x400).unwrap();
        let after = s.train(0x400, 0x9000, 7);
        assert_eq!(after, before / 2);
    }

    #[test]
    fn rsp_state_mismatch_blocks_elimination() {
        let mut s = sld();
        let armed_at = StackState {
            epoch: 1,
            delta: -0x40,
        };
        for _ in 0..=30 {
            s.train(0x500, 0x7fff_0000, 1);
        }
        s.arm(0x500, armed_at, true);
        // Same state: eliminate.
        assert!(matches!(
            s.lookup(0x500, armed_at),
            SldDecision::Eliminate { .. }
        ));
        // Re-arm, then present a different delta: must refuse and disarm.
        s.arm(0x500, armed_at, true);
        let other = StackState {
            epoch: 1,
            delta: -0x80,
        };
        assert_eq!(s.lookup(0x500, other), SldDecision::Normal);
        assert!(!s.armed(0x500));
    }

    #[test]
    fn reset_eliminate_reports_whether_armed() {
        let mut s = sld();
        for _ in 0..=30 {
            s.train(0x400, 0x8000, 7);
        }
        s.arm(0x400, StackState::default(), false);
        assert!(s.reset_eliminate(0x400));
        assert!(!s.reset_eliminate(0x400), "second reset is a no-op");
    }

    #[test]
    fn set_conflict_evicts_lru() {
        let mut s = sld();
        // 32 sets: PCs with identical low bits map to one set. Fill 17 ways.
        let pcs: Vec<u64> = (0..17).map(|i| 0x400 + i * 32 * 4).collect();
        for &pc in &pcs {
            s.train(pc, pc + 1, 1);
        }
        // The first-trained PC must have been evicted.
        assert_eq!(s.confidence(pcs[0]), None);
        assert!(s.confidence(pcs[16]).is_some());
    }

    #[test]
    fn flush_disarms_everything() {
        let mut s = sld();
        for _ in 0..=30 {
            s.train(0x400, 0x8000, 7);
        }
        s.arm(0x400, StackState::default(), false);
        s.flush_elimination();
        assert!(!s.armed(0x400));
        // Confidence survives a flush (only elimination state is cleared).
        assert_eq!(s.confidence(0x400), Some(30));
    }

    #[test]
    fn punish_halves_confidence() {
        let mut s = sld();
        for _ in 0..=31 {
            s.train(0x400, 0x8000, 7);
        }
        s.punish(0x400);
        assert_eq!(s.confidence(0x400), Some(15));
    }
}
