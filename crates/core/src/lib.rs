//! # constable — safely eliminating load instruction execution
//!
//! From-scratch implementation of **Constable** (Bera, Ranganathan, et al.,
//! ISCA 2024): a purely-microarchitectural technique that identifies
//! *likely-stable* loads — loads that repeatedly fetch the same value from
//! the same address — and eliminates their entire execution (address
//! generation *and* data fetch), relieving both load data dependence and
//! load resource dependence.
//!
//! The mechanism rests on two safety conditions (§5): between two dynamic
//! instances of a load, (1) none of its source registers was written, and
//! (2) no store or snoop touched its address. Three structures enforce them:
//!
//! * [`Sld`] — the Stable Load Detector: PC-indexed, confidence-driven
//!   (threshold 30 of 31), holds the last (address, value) and the
//!   `can_eliminate` flag;
//! * [`Rmt`] — the Register Monitor Table: register-indexed lists of armed
//!   load PCs, drained on register writes (Condition 1);
//! * [`Amt`] — the Address Monitor Table: cacheline-indexed lists of armed
//!   load PCs, probed by store addresses and snoops (Condition 2);
//!
//! plus the [`Xprf`], a 32-entry register file carrying eliminated-load
//! values, so elimination needs no extra main-PRF write ports (§6.3).
//!
//! [`Constable`] is the façade a core model drives; see its example.
//! Total cost of the paper configuration: 12.4 KB ([`StorageBreakdown`]).

mod amt;
mod config;
mod engine;
mod ideal;
mod rmt;
mod sld;
mod storage;
mod xprf;

pub use amt::Amt;
pub use config::ConstableConfig;
pub use engine::{Constable, ConstableStats, LoadRename, ResetReason};
pub use ideal::{IdealConfig, IdealOracle};
pub use rmt::Rmt;
pub use sld::{Sld, SldDecision, StackState};
pub use storage::{
    StorageBreakdown, AMT_PC_BITS, AMT_TAG_BITS, RMT_PC_BITS, SLD_ADDR_BITS, SLD_CONF_BITS,
    SLD_FLAG_BITS, SLD_TAG_BITS, SLD_VALUE_BITS,
};
pub use xprf::{Xprf, XprfSlot};
