//! Constable configuration (paper §6, Table 1).

use sim_isa::AddrMode;

/// Configuration of the Constable mechanism.
///
/// Defaults reproduce the paper's evaluated design point: a 512-entry SLD
/// (32 sets × 16 ways, 5-bit confidence, threshold 30, 3R/2W ports), an RMT
/// with 16-deep PC lists for the stack registers and 8-deep for the rest, a
/// 256-entry AMT (32 sets × 8 ways, 4 load PCs per entry) indexed at
/// cacheline granularity, a 32-entry xPRF, and CV-bit pinning enabled.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstableConfig {
    /// SLD sets × ways (512 entries in the paper).
    pub sld_sets: usize,
    pub sld_ways: usize,
    /// Stability confidence threshold (30 in the paper; 5-bit counter).
    pub confidence_threshold: u8,
    /// Maximum confidence value (31 for a 5-bit counter).
    pub confidence_max: u8,
    /// SLD read ports available to a rename group (§6.7.1).
    pub sld_read_ports: u32,
    /// SLD write ports available for rename-stage resets (§6.7.1).
    pub sld_write_ports: u32,
    /// RMT list depth for RSP/RBP.
    pub rmt_stack_depth: usize,
    /// RMT list depth for the remaining registers.
    pub rmt_other_depth: usize,
    /// AMT sets × ways (256 entries in the paper).
    pub amt_sets: usize,
    pub amt_ways: usize,
    /// Load PCs tracked per AMT entry.
    pub amt_pcs_per_entry: usize,
    /// Index/match the AMT at full-address granularity instead of cacheline
    /// (§6.6 reports the delta is only 0.4%).
    pub amt_full_address: bool,
    /// Invalidate AMT entries on every L1-D eviction instead of pinning the
    /// CV bit — the Constable-AMT-I variant of Appendix A.3.
    pub amt_invalidate_on_l1_evict: bool,
    /// xPRF capacity (32 entries; §6.3).
    pub xprf_entries: usize,
    /// Restrict elimination to one addressing mode (Fig 13 ablation).
    pub mode_filter: Option<AddrMode>,
    /// Apply rename-stage structure updates from wrong-path instructions
    /// (§6.7.2; `false` is the fig9b "correct-path only" study).
    pub wrong_path_updates: bool,
}

impl ConstableConfig {
    /// The paper's evaluated configuration (Table 1).
    pub fn paper() -> Self {
        ConstableConfig {
            sld_sets: 32,
            sld_ways: 16,
            confidence_threshold: 30,
            confidence_max: 31,
            sld_read_ports: 3,
            sld_write_ports: 2,
            rmt_stack_depth: 16,
            rmt_other_depth: 8,
            amt_sets: 32,
            amt_ways: 8,
            amt_pcs_per_entry: 4,
            amt_full_address: false,
            amt_invalidate_on_l1_evict: false,
            xprf_entries: 32,
            mode_filter: None,
            wrong_path_updates: true,
        }
    }

    /// Appends the stable on-disk key encoding of every field to `out`
    /// (little-endian, declaration order) — part of the result-store key
    /// format, which must survive process restarts and rebuilds, unlike
    /// `Hash`-based fingerprints. The destructuring is deliberately
    /// exhaustive: adding a field breaks this function at compile time,
    /// forcing the new field into the encoding (and a
    /// `result_store::KEY_FORMAT_VERSION` bump, enforced by the key-format
    /// guard test in `result-store`).
    pub fn stable_encode(&self, out: &mut Vec<u8>) {
        let ConstableConfig {
            sld_sets,
            sld_ways,
            confidence_threshold,
            confidence_max,
            sld_read_ports,
            sld_write_ports,
            rmt_stack_depth,
            rmt_other_depth,
            amt_sets,
            amt_ways,
            amt_pcs_per_entry,
            amt_full_address,
            amt_invalidate_on_l1_evict,
            xprf_entries,
            mode_filter,
            wrong_path_updates,
        } = self;
        for v in [
            *sld_sets as u64,
            *sld_ways as u64,
            u64::from(*confidence_threshold),
            u64::from(*confidence_max),
            u64::from(*sld_read_ports),
            u64::from(*sld_write_ports),
            *rmt_stack_depth as u64,
            *rmt_other_depth as u64,
            *amt_sets as u64,
            *amt_ways as u64,
            *amt_pcs_per_entry as u64,
            u64::from(*amt_full_address),
            u64::from(*amt_invalidate_on_l1_evict),
            *xprf_entries as u64,
            // Addressing modes encoded by paper presentation order, 0 = no
            // filter.
            match mode_filter {
                None => 0,
                Some(m) => {
                    1 + AddrMode::ALL
                        .iter()
                        .position(|x| x == m)
                        .expect("known mode") as u64
                }
            },
            u64::from(*wrong_path_updates),
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Total SLD entries.
    pub fn sld_entries(&self) -> usize {
        self.sld_sets * self.sld_ways
    }

    /// Total AMT entries.
    pub fn amt_entries(&self) -> usize {
        self.amt_sets * self.amt_ways
    }
}

impl Default for ConstableConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table1() {
        let c = ConstableConfig::paper();
        assert_eq!(c.sld_entries(), 512);
        assert_eq!(c.amt_entries(), 256);
        assert_eq!(c.confidence_threshold, 30);
        assert_eq!(c.xprf_entries, 32);
    }

    #[test]
    fn stable_encoding_separates_fields_and_is_deterministic() {
        let enc = |c: &ConstableConfig| {
            let mut v = Vec::new();
            c.stable_encode(&mut v);
            v
        };
        let a = ConstableConfig::paper();
        assert_eq!(enc(&a), enc(&a.clone()));
        let b = ConstableConfig {
            mode_filter: Some(AddrMode::StackRelative),
            ..ConstableConfig::paper()
        };
        let c = ConstableConfig {
            mode_filter: Some(AddrMode::RegRelative),
            ..ConstableConfig::paper()
        };
        assert_ne!(enc(&a), enc(&b));
        assert_ne!(enc(&b), enc(&c));
    }
}
