//! The Constable engine: coordinates SLD, RMT, AMT, and xPRF, implementing
//! the numbered operations of Fig 8.
//!
//! The cycle-accurate core drives this façade:
//!
//! * rename stage: [`Constable::rename_load`] per load (steps 1–3),
//!   [`Constable::on_dest_write`] per destination register (steps 7–8);
//! * writeback: [`Constable::on_load_writeback`] for non-eliminated loads
//!   (confidence training; steps 4–6 arm elimination for likely-stable ones);
//! * store address generation: [`Constable::on_store_addr`] (step 9);
//! * snoop delivery: [`Constable::on_snoop`] (step 10);
//! * retirement/squash of eliminated loads: [`Constable::free_xprf`].

use crate::amt::Amt;
use crate::config::ConstableConfig;
use crate::rmt::Rmt;
use crate::sld::{Sld, SldDecision, StackState};
use crate::xprf::{Xprf, XprfSlot};
use sim_isa::{ArchReg, CodecError, Dec, Enc, MemRef};

/// Rename-stage outcome for a load (steps 1–3 of Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadRename {
    /// Execute normally.
    Normal,
    /// Execute normally, but tagged likely-stable: its writeback will arm
    /// elimination (step 3).
    LikelyStable,
    /// Execution eliminated (step 2): converted to a move from `slot`,
    /// carrying the last-computed address for LB disambiguation.
    Eliminated {
        addr: u64,
        value: u64,
        slot: XprfSlot,
    },
}

/// Why an armed load PC lost its `can_eliminate` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetReason {
    RegWrite,
    StoreAddr,
    Snoop,
    AmtConflict,
    RmtConflict,
    L1Evict,
    Violation,
    ContextSwitch,
}

/// Aggregate Constable statistics.
#[derive(Debug, Clone, Default)]
pub struct ConstableStats {
    pub loads_renamed: u64,
    pub eliminated: u64,
    pub marked_likely_stable: u64,
    pub armed: u64,
    pub xprf_full_forgone: u64,
    pub resets_reg_write: u64,
    pub resets_store: u64,
    pub resets_snoop: u64,
    pub resets_amt_conflict: u64,
    pub resets_rmt_conflict: u64,
    pub resets_l1_evict: u64,
    pub resets_violation: u64,
    pub cv_pins_requested: u64,
}

/// The Constable mechanism (the paper's contribution).
///
/// ```
/// use constable::{Constable, ConstableConfig, LoadRename, StackState};
/// use sim_isa::MemRef;
///
/// let mut c = Constable::new(ConstableConfig::paper());
/// let mem = MemRef::rip(0x60_0000);
/// let st = StackState::default();
/// // Train past the confidence threshold…
/// for _ in 0..32 {
///     c.on_load_writeback(0x400, &mem, 0x60_0000, 7, false, st);
/// }
/// // …the next instance is marked likely-stable, executes, arms,
/// assert_eq!(c.rename_load(0x400, &mem, st), LoadRename::LikelyStable);
/// c.on_load_writeback(0x400, &mem, 0x60_0000, 7, true, st);
/// // …and every instance after that is eliminated outright.
/// assert!(matches!(c.rename_load(0x400, &mem, st), LoadRename::Eliminated { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Constable {
    cfg: ConstableConfig,
    sld: Sld,
    rmt: Rmt,
    amt: Amt,
    xprf: Xprf,
    stats: ConstableStats,
    /// SLD accesses in the current rename cycle (port-pressure modeling).
    sld_reads_this_cycle: u32,
    sld_writes_this_cycle: u32,
}

impl Constable {
    /// Creates the mechanism from a configuration.
    pub fn new(cfg: ConstableConfig) -> Self {
        Constable {
            sld: Sld::new(&cfg),
            rmt: Rmt::new(&cfg),
            amt: Amt::new(&cfg),
            xprf: Xprf::new(cfg.xprf_entries),
            stats: ConstableStats::default(),
            sld_reads_this_cycle: 0,
            sld_writes_this_cycle: 0,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ConstableConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ConstableStats {
        &self.stats
    }

    /// xPRF registers currently backing in-flight eliminated loads.
    pub fn xprf_in_use(&self) -> usize {
        self.xprf.in_use()
    }

    fn mode_allowed(&self, mem: &MemRef) -> bool {
        match self.cfg.mode_filter {
            None => true,
            Some(m) => mem.addr_mode() == m,
        }
    }

    fn reset_pc(&mut self, pc: u64, reason: ResetReason) {
        if self.sld.reset_eliminate(pc) {
            // Only rename-stage resets (register writes, Fig 8 steps 7–8)
            // contend for the SLD's two rename-side write ports (§6.7.1);
            // writeback/memory-stage updates use their own access slots.
            if matches!(reason, ResetReason::RegWrite) {
                self.sld_writes_this_cycle += 1;
            }
            match reason {
                ResetReason::RegWrite => self.stats.resets_reg_write += 1,
                ResetReason::StoreAddr => self.stats.resets_store += 1,
                ResetReason::Snoop => self.stats.resets_snoop += 1,
                ResetReason::AmtConflict => self.stats.resets_amt_conflict += 1,
                ResetReason::RmtConflict => self.stats.resets_rmt_conflict += 1,
                ResetReason::L1Evict => self.stats.resets_l1_evict += 1,
                ResetReason::Violation => self.stats.resets_violation += 1,
                ResetReason::ContextSwitch => {}
            }
        }
    }

    /// Rename-stage load lookup (Fig 8 steps 1–3). Consumes an SLD read port.
    pub fn rename_load(&mut self, pc: u64, mem: &MemRef, stack: StackState) -> LoadRename {
        self.stats.loads_renamed += 1;
        self.sld_reads_this_cycle += 1;
        if !self.mode_allowed(mem) {
            return LoadRename::Normal;
        }
        match self.sld.lookup(pc, stack) {
            SldDecision::Normal => LoadRename::Normal,
            SldDecision::MarkLikelyStable => {
                self.stats.marked_likely_stable += 1;
                LoadRename::LikelyStable
            }
            SldDecision::Eliminate { addr, value } => match self.xprf.alloc() {
                Some(slot) => {
                    self.stats.eliminated += 1;
                    LoadRename::Eliminated { addr, value, slot }
                }
                None => {
                    self.stats.xprf_full_forgone += 1;
                    LoadRename::Normal
                }
            },
        }
    }

    /// Rename-stage destination-register update (Fig 8 steps 7–8): resets
    /// elimination for every load monitored under `reg`.
    ///
    /// `folded_stack_write` marks `rsp ± imm` updates the renamer folds via
    /// its stack-delta tracker; those do not drain the RSP list (the SLD's
    /// recorded [`StackState`] guards those loads instead).
    pub fn on_dest_write(&mut self, reg: ArchReg, folded_stack_write: bool) {
        if reg == ArchReg::RSP && folded_stack_write {
            return;
        }
        for pc in self.rmt.drain(reg) {
            self.reset_pc(pc, ResetReason::RegWrite);
        }
    }

    /// Writeback of a non-eliminated load: trains SLD confidence (§6.2) and,
    /// when `likely_stable`, arms elimination (Fig 8 steps 4–6).
    ///
    /// Returns `true` when the core should pin this core's CV bit in the
    /// directory entry of the load's cacheline (§6.6).
    pub fn on_load_writeback(
        &mut self,
        pc: u64,
        mem: &MemRef,
        addr: u64,
        value: u64,
        likely_stable: bool,
        stack: StackState,
    ) -> bool {
        self.sld.train(pc, addr, value);
        if !likely_stable || !self.mode_allowed(mem) {
            return false;
        }
        // Step 4: monitor every source architectural register.
        let mut uses_rsp = false;
        for reg in mem.addr_regs() {
            if reg == ArchReg::RSP {
                uses_rsp = true;
            }
            if let Some(evicted) = self.rmt.insert(reg, pc) {
                self.reset_pc(evicted, ResetReason::RmtConflict);
            }
        }
        // Step 5: monitor the memory address.
        for victim in self.amt.insert(addr, pc) {
            self.reset_pc(victim, ResetReason::AmtConflict);
        }
        // Step 6: arm.
        if self.sld.arm(pc, stack, uses_rsp) {
            self.stats.armed += 1;
        }
        self.stats.cv_pins_requested += 1;
        true
    }

    /// Store address generation (Fig 8 steps 9 → 8).
    pub fn on_store_addr(&mut self, addr: u64) {
        for pc in self.amt.probe_store(addr) {
            self.reset_pc(pc, ResetReason::StoreAddr);
        }
    }

    /// Snoop delivery (Fig 8 steps 10 → 8). `line` is a cacheline address.
    pub fn on_snoop(&mut self, line: u64) {
        for pc in self.amt.probe_snoop(line) {
            self.reset_pc(pc, ResetReason::Snoop);
        }
    }

    /// Whether this configuration consumes L1-D eviction notifications at
    /// all. Only the Constable-AMT-I variant (Appendix A.3) does; the core
    /// uses this to leave its eviction sink disabled — and the tracking
    /// free — for every other machine.
    pub fn wants_l1_evictions(&self) -> bool {
        self.cfg.amt_invalidate_on_l1_evict
    }

    /// L1-D eviction notifications — only acted on by the Constable-AMT-I
    /// variant (Appendix A.3); the default design pins CV bits instead.
    /// May be called several times per access (the sink hands over its
    /// inline buffer and any spill separately); line order is preserved.
    pub fn on_l1_evictions(&mut self, lines: &[u64]) {
        if !self.cfg.amt_invalidate_on_l1_evict {
            return;
        }
        for &line in lines {
            for pc in self.amt.probe_l1_evict(line) {
                self.reset_pc(pc, ResetReason::L1Evict);
            }
        }
    }

    /// Memory-ordering violation by an eliminated load (§6.5, Fig 10 G):
    /// the flush re-executes it; its confidence is halved at re-execution.
    pub fn on_ordering_violation(&mut self, pc: u64) {
        self.sld.punish(pc);
        self.stats.resets_violation += 1;
    }

    /// Frees the xPRF register of a retired or squashed eliminated load.
    pub fn free_xprf(&mut self, slot: XprfSlot) {
        self.xprf.free(slot);
    }

    /// Context switch / physical-address remap (§6.7.3): drop all
    /// elimination state (confidence survives; it is PC-keyed learning).
    pub fn on_context_switch(&mut self) {
        self.sld.flush_elimination();
        self.rmt.clear();
        self.amt.clear();
    }

    /// Ends the rename cycle, returning `(sld_reads, sld_writes)` consumed —
    /// the core stalls rename when these exceed the configured ports
    /// (§6.7.1: 3R/2W).
    pub fn end_cycle(&mut self) -> (u32, u32) {
        let out = (self.sld_reads_this_cycle, self.sld_writes_this_cycle);
        self.sld_reads_this_cycle = 0;
        self.sld_writes_this_cycle = 0;
        out
    }

    /// Whether `pc` is currently armed (tests/analysis).
    pub fn armed(&self, pc: u64) -> bool {
        self.sld.armed(pc)
    }

    /// Current SLD confidence of `pc` (tests/analysis).
    pub fn confidence(&self, pc: u64) -> Option<u8> {
        self.sld.confidence(pc)
    }

    /// Encodes the full monitor/arming state for a checkpoint: SLD, RMT,
    /// AMT, the xPRF free list (exact order), stats, and the in-cycle port
    /// counters. The configuration is *not* encoded — the checkpoint header
    /// pins it, and decode rebuilds the geometry from it.
    pub fn encode(&self, e: &mut Enc) {
        let Constable {
            cfg: _,
            sld,
            rmt,
            amt,
            xprf,
            stats,
            sld_reads_this_cycle,
            sld_writes_this_cycle,
        } = self;
        sld.encode(e);
        rmt.encode(e);
        amt.encode(e);
        xprf.encode(e);
        let ConstableStats {
            loads_renamed,
            eliminated,
            marked_likely_stable,
            armed,
            xprf_full_forgone,
            resets_reg_write,
            resets_store,
            resets_snoop,
            resets_amt_conflict,
            resets_rmt_conflict,
            resets_l1_evict,
            resets_violation,
            cv_pins_requested,
        } = stats;
        for v in [
            loads_renamed,
            eliminated,
            marked_likely_stable,
            armed,
            xprf_full_forgone,
            resets_reg_write,
            resets_store,
            resets_snoop,
            resets_amt_conflict,
            resets_rmt_conflict,
            resets_l1_evict,
            resets_violation,
            cv_pins_requested,
        ] {
            e.u64(*v);
        }
        e.u32(*sld_reads_this_cycle);
        e.u32(*sld_writes_this_cycle);
    }

    /// Decodes state written by [`Constable::encode`] under the same config.
    pub fn decode(cfg: ConstableConfig, d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let sld = Sld::decode(&cfg, d)?;
        let rmt = Rmt::decode(&cfg, d)?;
        let amt = Amt::decode(&cfg, d)?;
        let xprf = Xprf::decode(d)?;
        let stats = ConstableStats {
            loads_renamed: d.u64()?,
            eliminated: d.u64()?,
            marked_likely_stable: d.u64()?,
            armed: d.u64()?,
            xprf_full_forgone: d.u64()?,
            resets_reg_write: d.u64()?,
            resets_store: d.u64()?,
            resets_snoop: d.u64()?,
            resets_amt_conflict: d.u64()?,
            resets_rmt_conflict: d.u64()?,
            resets_l1_evict: d.u64()?,
            resets_violation: d.u64()?,
            cv_pins_requested: d.u64()?,
        };
        Ok(Constable {
            cfg,
            sld,
            rmt,
            amt,
            xprf,
            stats,
            sld_reads_this_cycle: d.u32()?,
            sld_writes_this_cycle: d.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::AddrMode;

    fn engine() -> Constable {
        Constable::new(ConstableConfig::paper())
    }

    fn train_to_armed(c: &mut Constable, pc: u64, mem: &MemRef, addr: u64, value: u64) {
        let st = StackState::default();
        for _ in 0..32 {
            c.on_load_writeback(pc, mem, addr, value, false, st);
        }
        assert_eq!(c.rename_load(pc, mem, st), LoadRename::LikelyStable);
        let pin = c.on_load_writeback(pc, mem, addr, value, true, st);
        assert!(pin, "arming requests a CV pin");
        assert!(c.armed(pc));
    }

    #[test]
    fn full_lifecycle_train_arm_eliminate() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 0x5eed);
        match c.rename_load(0x400, &mem, StackState::default()) {
            LoadRename::Eliminated { addr, value, slot } => {
                assert_eq!(addr, 0x60_0000);
                assert_eq!(value, 0x5eed);
                c.free_xprf(slot);
            }
            other => panic!("expected elimination, got {other:?}"),
        }
        assert_eq!(c.stats().eliminated, 1);
    }

    #[test]
    fn store_to_watched_address_disarms() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_store_addr(0x60_0000);
        assert!(!c.armed(0x400));
        assert_eq!(c.stats().resets_store, 1);
        assert_eq!(
            c.rename_load(0x400, &mem, StackState::default()),
            LoadRename::LikelyStable,
            "confidence is intact; the load re-arms at its next writeback"
        );
    }

    #[test]
    fn store_elsewhere_in_line_disarms_at_line_granularity() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_store_addr(0x60_0018); // same 64B line
        assert!(
            !c.armed(0x400),
            "cacheline-indexed AMT collides within the line"
        );
    }

    #[test]
    fn full_address_amt_ignores_same_line_store() {
        let cfg = ConstableConfig {
            amt_full_address: true,
            ..ConstableConfig::paper()
        };
        let mut c = Constable::new(cfg);
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_store_addr(0x60_0018);
        assert!(c.armed(0x400), "full-address AMT must not false-positive");
        c.on_store_addr(0x60_0000);
        assert!(!c.armed(0x400));
    }

    #[test]
    fn snoop_disarms_watched_line() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_snoop(0x60_0000 >> 6);
        assert!(!c.armed(0x400));
        assert_eq!(c.stats().resets_snoop, 1);
    }

    #[test]
    fn register_write_disarms_reg_relative_load() {
        let mut c = engine();
        let mem = MemRef::base_disp(ArchReg::R8, 0x10);
        train_to_armed(&mut c, 0x500, &mem, 0x1010, 9);
        c.on_dest_write(ArchReg::R8, false);
        assert!(!c.armed(0x500));
        assert_eq!(c.stats().resets_reg_write, 1);
    }

    #[test]
    fn unrelated_register_write_does_not_disarm() {
        let mut c = engine();
        let mem = MemRef::base_disp(ArchReg::R8, 0x10);
        train_to_armed(&mut c, 0x500, &mem, 0x1010, 9);
        c.on_dest_write(ArchReg::R9, false);
        assert!(c.armed(0x500));
    }

    #[test]
    fn folded_rsp_write_preserves_stack_load_elimination() {
        let mut c = engine();
        let mem = MemRef::base_disp(ArchReg::RSP, 0x8);
        let st = StackState {
            epoch: 0,
            delta: -0x40,
        };
        for _ in 0..32 {
            c.on_load_writeback(0x600, &mem, 0x7ffe_ff48, 3, false, st);
        }
        assert_eq!(c.rename_load(0x600, &mem, st), LoadRename::LikelyStable);
        c.on_load_writeback(0x600, &mem, 0x7ffe_ff48, 3, true, st);
        // sub rsp, imm → folded; the RSP monitor list survives…
        c.on_dest_write(ArchReg::RSP, true);
        assert!(c.armed(0x600));
        // …and elimination fires only at the matching stack state.
        assert!(matches!(
            c.rename_load(0x600, &mem, st),
            LoadRename::Eliminated { .. }
        ));
        let other = StackState {
            epoch: 0,
            delta: -0x80,
        };
        assert_eq!(c.rename_load(0x600, &mem, other), LoadRename::Normal);
    }

    #[test]
    fn opaque_rsp_write_disarms_stack_loads() {
        let mut c = engine();
        let mem = MemRef::base_disp(ArchReg::RSP, 0x8);
        let st = StackState::default();
        train_to_armed(&mut c, 0x600, &mem, 0x7ffe_ff48, 3);
        c.on_dest_write(ArchReg::RSP, false); // mov rsp, rax
        assert!(!c.armed(0x600));
        let _ = st;
    }

    #[test]
    fn xprf_exhaustion_forgoes_elimination() {
        let cfg = ConstableConfig {
            xprf_entries: 1,
            ..ConstableConfig::paper()
        };
        let mut c = Constable::new(cfg);
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        let st = StackState::default();
        let first = c.rename_load(0x400, &mem, st);
        assert!(matches!(first, LoadRename::Eliminated { .. }));
        // Slot not yet freed: the next instance cannot be eliminated.
        assert_eq!(c.rename_load(0x400, &mem, st), LoadRename::Normal);
        assert_eq!(c.stats().xprf_full_forgone, 1);
    }

    #[test]
    fn mode_filter_restricts_elimination() {
        let cfg = ConstableConfig {
            mode_filter: Some(AddrMode::StackRelative),
            ..ConstableConfig::paper()
        };
        let mut c = Constable::new(cfg);
        let rip = MemRef::rip(0x60_0000);
        let st = StackState::default();
        for _ in 0..32 {
            c.on_load_writeback(0x400, &rip, 0x60_0000, 7, false, st);
        }
        assert_eq!(
            c.rename_load(0x400, &rip, st),
            LoadRename::Normal,
            "PC-relative load filtered out in stack-only mode"
        );
    }

    #[test]
    fn context_switch_flushes_elimination_state() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_context_switch();
        assert!(!c.armed(0x400));
        assert_eq!(
            c.rename_load(0x400, &mem, StackState::default()),
            LoadRename::LikelyStable,
            "confidence survives; relearning elimination is fast"
        );
    }

    #[test]
    fn amt_i_variant_disarms_on_l1_evictions() {
        let cfg = ConstableConfig {
            amt_invalidate_on_l1_evict: true,
            ..ConstableConfig::paper()
        };
        let mut c = Constable::new(cfg);
        let mem = MemRef::rip(0x60_0000);
        train_to_armed(&mut c, 0x400, &mem, 0x60_0000, 7);
        c.on_l1_evictions(&[0x60_0000 >> 6]);
        assert!(!c.armed(0x400));
        assert_eq!(c.stats().resets_l1_evict, 1);

        // The default design ignores evictions (CV pinning covers them).
        let mut d = engine();
        train_to_armed(&mut d, 0x400, &mem, 0x60_0000, 7);
        d.on_l1_evictions(&[0x60_0000 >> 6]);
        assert!(d.armed(0x400));
    }

    #[test]
    fn cycle_port_accounting_resets() {
        let mut c = engine();
        let mem = MemRef::rip(0x60_0000);
        let st = StackState::default();
        c.rename_load(0x400, &mem, st);
        c.rename_load(0x404, &mem, st);
        let (r, w) = c.end_cycle();
        assert_eq!(r, 2);
        assert_eq!(w, 0);
        let (r2, _) = c.end_cycle();
        assert_eq!(r2, 0, "counters reset each cycle");
    }
}
