//! Address Monitor Table (AMT) — §6.1, §6.4.3–6.4.4, §6.6.
//!
//! A physical-address-indexed set-associative table; each entry holds the
//! PCs of currently-eliminated loads fetching from that address. A store's
//! generated address or an incoming snoop probes the AMT, resets the listed
//! PCs' `can_eliminate` flags in the SLD, and evicts the entry (Condition 2
//! enforcement). Indexed at cacheline granularity by default; the
//! full-address variant (§6.6) matches stores exactly (snoops, which only
//! carry a line address, always match at line granularity).

use crate::config::ConstableConfig;
use sim_isa::{CodecError, Dec, Enc};

const LINE_SHIFT: u32 = 6;

#[derive(Debug, Clone, Default)]
struct AmtEntry {
    valid: bool,
    /// Full address in full-address mode; used for store matching.
    addr: u64,
    pcs: Vec<u64>,
    lru: u64,
}

/// The Address Monitor Table.
#[derive(Debug, Clone)]
pub struct Amt {
    sets: usize,
    ways: usize,
    pcs_per_entry: usize,
    full_address: bool,
    entries: Vec<AmtEntry>,
    clock: u64,
}

impl Amt {
    /// Creates an AMT per the configuration.
    pub fn new(cfg: &ConstableConfig) -> Self {
        Amt {
            sets: cfg.amt_sets,
            ways: cfg.amt_ways,
            pcs_per_entry: cfg.amt_pcs_per_entry,
            full_address: cfg.amt_full_address,
            entries: vec![AmtEntry::default(); cfg.amt_sets * cfg.amt_ways],
            clock: 0,
        }
    }

    /// The granularity key the AMT indexes on.
    fn key(&self, addr: u64) -> u64 {
        if self.full_address {
            addr
        } else {
            addr >> LINE_SHIFT
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) & (self.sets - 1)
    }

    fn find(&self, key: u64) -> Option<usize> {
        let set = self.set_of(key);
        (0..self.ways)
            .map(|w| set * self.ways + w)
            .find(|&i| self.entries[i].valid && self.key(self.entries[i].addr) == key)
    }

    /// Inserts `load_pc` as a watcher of `addr` (Fig 8 step 5).
    ///
    /// Returns PCs whose elimination must be reset because they lost
    /// monitoring: either the PCs of a victim entry (set conflict) or a PC
    /// displaced from a full entry list.
    pub fn insert(&mut self, addr: u64, load_pc: u64) -> Vec<u64> {
        self.clock += 1;
        let clock = self.clock;
        let key = self.key(addr);
        if let Some(i) = self.find(key) {
            let pcs_per_entry = self.pcs_per_entry;
            let e = &mut self.entries[i];
            e.lru = clock;
            if e.pcs.contains(&load_pc) {
                return Vec::new();
            }
            let mut displaced = Vec::new();
            if e.pcs.len() >= pcs_per_entry {
                displaced.push(e.pcs.remove(0));
            }
            e.pcs.push(load_pc);
            return displaced;
        }
        // Allocate: LRU victim.
        let set = self.set_of(key);
        let victim = (0..self.ways)
            .map(|w| set * self.ways + w)
            .min_by_key(|&i| (self.entries[i].valid, self.entries[i].lru))
            .expect("amt set nonempty");
        let old = std::mem::replace(
            &mut self.entries[victim],
            AmtEntry {
                valid: true,
                addr,
                pcs: vec![load_pc],
                lru: clock,
            },
        );
        if old.valid {
            old.pcs
        } else {
            Vec::new()
        }
    }

    /// Probes with a store's generated address (Fig 8 step 9): returns the
    /// watching PCs and evicts the entry. In full-address mode only an exact
    /// address match triggers (stores to other bytes of the line don't).
    pub fn probe_store(&mut self, addr: u64) -> Vec<u64> {
        let key = self.key(addr);
        match self.find(key) {
            Some(i) if !self.full_address || self.entries[i].addr == addr => {
                let e = std::mem::take(&mut self.entries[i]);
                e.pcs
            }
            _ => Vec::new(),
        }
    }

    /// Probes with a snoop's cacheline address (Fig 8 step 10): returns the
    /// watching PCs of every entry on that line and evicts them.
    pub fn probe_snoop(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if self.full_address {
            // Entries of one line may live in different sets: scan.
            for e in &mut self.entries {
                if e.valid && e.addr >> LINE_SHIFT == line {
                    out.extend(std::mem::take(e).pcs);
                }
            }
        } else if let Some(i) = self.find(line) {
            out.extend(std::mem::take(&mut self.entries[i]).pcs);
        }
        out
    }

    /// Probes with an evicted L1-D line (Constable-AMT-I variant, App A.3).
    pub fn probe_l1_evict(&mut self, line: u64) -> Vec<u64> {
        self.probe_snoop(line)
    }

    /// Clears the table (context switch / physical remap, §6.7.3).
    pub fn clear(&mut self) {
        self.entries
            .iter_mut()
            .for_each(|e| *e = AmtEntry::default());
    }

    /// Number of valid entries (for stats).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Encodes the table for a checkpoint (geometry comes from the config).
    pub(crate) fn encode(&self, e: &mut Enc) {
        let Amt {
            sets: _,
            ways: _,
            pcs_per_entry: _,
            full_address: _,
            entries,
            clock,
        } = self;
        for entry in entries {
            let AmtEntry {
                valid,
                addr,
                pcs,
                lru,
            } = entry;
            e.bool(*valid);
            e.u64(*addr);
            e.seq_len(pcs.len());
            for &pc in pcs {
                e.u64(pc);
            }
            e.u64(*lru);
        }
        e.u64(*clock);
    }

    /// Decodes a table written by [`Amt::encode`] under the same config.
    pub(crate) fn decode(cfg: &ConstableConfig, d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut a = Amt::new(cfg);
        for entry in a.entries.iter_mut() {
            let valid = d.bool()?;
            let addr = d.u64()?;
            let n = d.seq_len()?;
            let mut pcs = Vec::with_capacity(n);
            for _ in 0..n {
                pcs.push(d.u64()?);
            }
            *entry = AmtEntry {
                valid,
                addr,
                pcs,
                lru: d.u64()?,
            };
        }
        a.clock = d.u64()?;
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amt() -> Amt {
        Amt::new(&ConstableConfig::paper())
    }

    fn full_amt() -> Amt {
        let cfg = ConstableConfig {
            amt_full_address: true,
            ..ConstableConfig::paper()
        };
        Amt::new(&cfg)
    }

    #[test]
    fn store_probe_returns_watchers_and_evicts() {
        let mut a = amt();
        a.insert(0x8000, 0x400);
        a.insert(0x8008, 0x500); // same line
        let pcs = a.probe_store(0x8010); // same line, other bytes
        assert_eq!(
            pcs,
            vec![0x400, 0x500],
            "line-granular AMT matches the line"
        );
        assert!(
            a.probe_store(0x8000).is_empty(),
            "entry evicted after probe"
        );
    }

    #[test]
    fn full_address_mode_ignores_same_line_different_byte() {
        let mut a = full_amt();
        a.insert(0x8000, 0x400);
        assert!(
            a.probe_store(0x8010).is_empty(),
            "full-address AMT must not false-positive within the line"
        );
        assert_eq!(a.probe_store(0x8000), vec![0x400]);
    }

    #[test]
    fn snoop_probe_matches_lines_in_both_modes() {
        for mut a in [amt(), full_amt()] {
            a.insert(0x8000, 0x400);
            a.insert(0x8038, 0x500);
            let mut pcs = a.probe_snoop(0x8000 >> 6);
            pcs.sort_unstable();
            assert_eq!(pcs, vec![0x400, 0x500]);
            assert_eq!(a.occupancy(), 0);
        }
    }

    #[test]
    fn entry_pc_list_displacement_is_reported() {
        let mut a = amt();
        let mut displaced = Vec::new();
        for i in 0..6u64 {
            displaced.extend(a.insert(0x9000, 0x400 + i * 4));
        }
        assert_eq!(displaced, vec![0x400, 0x404], "4-PC entry displaces oldest");
    }

    #[test]
    fn set_conflict_reports_victim_watchers() {
        let mut a = amt();
        // 32 sets at line granularity: addresses 64*32 apart collide.
        let stride = 64 * 32;
        let mut victims = Vec::new();
        for i in 0..9u64 {
            victims.extend(a.insert(0x10_0000 + i * stride, 0x400 + i * 4));
        }
        assert_eq!(
            victims,
            vec![0x400],
            "9th insert into 8-way set evicts first"
        );
    }

    #[test]
    fn duplicate_watcher_not_added_twice() {
        let mut a = amt();
        a.insert(0x8000, 0x400);
        a.insert(0x8000, 0x400);
        assert_eq!(a.probe_store(0x8000), vec![0x400]);
    }

    #[test]
    fn clear_empties_table() {
        let mut a = amt();
        a.insert(0x8000, 0x400);
        a.clear();
        assert_eq!(a.occupancy(), 0);
    }
}
