//! Storage-overhead accounting (paper Table 1).
//!
//! The paper's design costs 12.4 KB per core: SLD 7.9 KB + RMT 0.4 KB +
//! AMT 4.0 KB. This module computes the same arithmetic from a
//! [`ConstableConfig`], so configuration sweeps report their true cost.

use crate::config::ConstableConfig;

/// Bit widths from Table 1 (48-bit physical address space baseline).
pub const SLD_TAG_BITS: u64 = 24;
pub const SLD_ADDR_BITS: u64 = 32;
pub const SLD_VALUE_BITS: u64 = 64;
pub const SLD_CONF_BITS: u64 = 5;
pub const SLD_FLAG_BITS: u64 = 1;
pub const RMT_PC_BITS: u64 = 24;
pub const AMT_TAG_BITS: u64 = 32;
pub const AMT_PC_BITS: u64 = 24;
/// Stack registers with deep RMT lists (RSP, RBP).
pub const STACK_REGS: u64 = 2;
/// Remaining x86-64 architectural registers.
pub const OTHER_REGS: u64 = 14;

/// Per-structure storage breakdown in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBreakdown {
    pub sld_bits: u64,
    pub rmt_bits: u64,
    pub amt_bits: u64,
}

impl StorageBreakdown {
    /// Computes the breakdown for `cfg`.
    pub fn for_config(cfg: &ConstableConfig) -> Self {
        let sld_entry =
            SLD_TAG_BITS + SLD_ADDR_BITS + SLD_VALUE_BITS + SLD_CONF_BITS + SLD_FLAG_BITS;
        let sld_bits = cfg.sld_entries() as u64 * sld_entry;
        let rmt_bits = (STACK_REGS * cfg.rmt_stack_depth as u64
            + OTHER_REGS * cfg.rmt_other_depth as u64)
            * RMT_PC_BITS;
        let amt_entry = AMT_TAG_BITS + cfg.amt_pcs_per_entry as u64 * AMT_PC_BITS;
        let amt_bits = cfg.amt_entries() as u64 * amt_entry;
        StorageBreakdown {
            sld_bits,
            rmt_bits,
            amt_bits,
        }
    }

    /// SLD size in KiB.
    pub fn sld_kb(&self) -> f64 {
        self.sld_bits as f64 / 8.0 / 1024.0
    }

    /// RMT size in KiB.
    pub fn rmt_kb(&self) -> f64 {
        self.rmt_bits as f64 / 8.0 / 1024.0
    }

    /// AMT size in KiB.
    pub fn amt_kb(&self) -> f64 {
        self.amt_bits as f64 / 8.0 / 1024.0
    }

    /// Total size in KiB.
    pub fn total_kb(&self) -> f64 {
        self.sld_kb() + self.rmt_kb() + self.amt_kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_costs_12_4_kb() {
        let s = StorageBreakdown::for_config(&ConstableConfig::paper());
        assert!(
            (s.sld_kb() - 7.875).abs() < 0.01,
            "SLD ≈ 7.9 KB, got {}",
            s.sld_kb()
        );
        assert!(
            (s.rmt_kb() - 0.42).abs() < 0.02,
            "RMT ≈ 0.4 KB, got {}",
            s.rmt_kb()
        );
        assert!(
            (s.amt_kb() - 4.0).abs() < 0.01,
            "AMT = 4.0 KB, got {}",
            s.amt_kb()
        );
        assert!(
            (s.total_kb() - 12.4).abs() < 0.15,
            "total ≈ 12.4 KB, got {:.2}",
            s.total_kb()
        );
    }

    #[test]
    fn doubling_sld_roughly_doubles_its_cost() {
        let base = StorageBreakdown::for_config(&ConstableConfig::paper());
        let big = StorageBreakdown::for_config(&ConstableConfig {
            sld_sets: 64,
            ..ConstableConfig::paper()
        });
        assert!((big.sld_kb() / base.sld_kb() - 2.0).abs() < 1e-9);
        assert_eq!(big.amt_bits, base.amt_bits);
    }
}
