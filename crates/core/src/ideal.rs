//! Oracle machinery for the headroom studies (§4.4, Fig 7).
//!
//! *Ideal Constable* identifies all global-stable loads offline and
//! eliminates both component operations of their execution. The oracle here
//! is a set of static load PCs produced by the load-inspector analysis pass;
//! the core consults it instead of the SLD in ideal configurations.

use std::collections::HashSet;

/// An offline oracle of global-stable load PCs.
#[derive(Debug, Clone, Default)]
pub struct IdealOracle {
    stable: HashSet<u64>,
}

impl IdealOracle {
    /// Creates an oracle from the global-stable PC set.
    pub fn new(stable_pcs: impl IntoIterator<Item = u64>) -> Self {
        IdealOracle {
            stable: stable_pcs.into_iter().collect(),
        }
    }

    /// Whether the static load at `pc` is global-stable.
    pub fn is_stable(&self, pc: u64) -> bool {
        self.stable.contains(&pc)
    }

    /// Number of global-stable static loads known to the oracle.
    pub fn len(&self) -> usize {
        self.stable.len()
    }

    /// Whether the oracle is empty.
    pub fn is_empty(&self) -> bool {
        self.stable.is_empty()
    }

    /// The PC set in sorted order — the canonical form used wherever the
    /// oracle must encode identically regardless of insertion order (the
    /// `Hash` impl below, and the result store's stable key encoding).
    pub fn sorted_pcs(&self) -> Vec<u64> {
        let mut pcs: Vec<u64> = self.stable.iter().copied().collect();
        pcs.sort_unstable();
        pcs
    }
}

/// Content hash, independent of the set's internal iteration order, so two
/// oracles built from the same PC set hash identically. Feeds
/// `CoreConfig::fingerprint` (run-memoization keys in the sweep harness).
impl std::hash::Hash for IdealOracle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let pcs = self.sorted_pcs();
        state.write_usize(pcs.len());
        for pc in pcs {
            state.write_u64(pc);
        }
    }
}

/// The four headroom configurations of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdealConfig {
    /// Perfect value prediction of global-stable loads; the loads still
    /// execute fully (address generation + data fetch) to verify.
    IdealStableLvp,
    /// Perfect value prediction; the load executes only through address
    /// generation (data fetch eliminated).
    IdealStableLvpNoFetch,
    /// Double the AGU + load ports over the baseline.
    DoubleLoadWidth,
    /// Eliminate both address generation and data fetch (the full headroom).
    IdealConstable,
}

impl IdealConfig {
    /// Stable one-byte code for the result store's key encoding (explicit
    /// match, never the compiler-assigned discriminant).
    pub fn stable_code(self) -> u8 {
        match self {
            IdealConfig::IdealStableLvp => 1,
            IdealConfig::IdealStableLvpNoFetch => 2,
            IdealConfig::DoubleLoadWidth => 3,
            IdealConfig::IdealConstable => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_hash_is_insertion_order_independent() {
        use std::hash::{Hash, Hasher};
        let h = |o: &IdealOracle| {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            o.hash(&mut s);
            s.finish()
        };
        let a = IdealOracle::new([0x400, 0x404, 0x5000]);
        let b = IdealOracle::new([0x5000, 0x400, 0x404]);
        assert_eq!(h(&a), h(&b));
        let c = IdealOracle::new([0x400, 0x404]);
        assert_ne!(h(&a), h(&c));
    }

    #[test]
    fn oracle_membership() {
        let o = IdealOracle::new([0x400, 0x404]);
        assert!(o.is_stable(0x400));
        assert!(!o.is_stable(0x408));
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert!(IdealOracle::default().is_empty());
    }
}
