//! xPRF — the small extra register file holding the values of in-flight
//! eliminated loads (§6.3).
//!
//! Writing eliminated-load values to the main PRF would need extra write
//! ports or arbitration; the paper instead uses a dedicated 32-entry file.
//! If no xPRF register is free, the load is simply not eliminated (observed
//! in only ~0.2% of instances with 32 entries).

use sim_isa::{CodecError, Dec, Enc};

/// An xPRF slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XprfSlot(pub u8);

/// The extra physical register file (free-list allocator).
#[derive(Debug, Clone)]
pub struct Xprf {
    free: Vec<u8>,
    capacity: usize,
    /// Allocation attempts that failed because the file was full.
    pub full_misses: u64,
    /// Successful allocations.
    pub allocations: u64,
}

impl Xprf {
    /// Creates an xPRF with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity <= 256, "xPRF slots are u8-indexed");
        Xprf {
            free: (0..capacity as u8).rev().collect(),
            capacity,
            full_misses: 0,
            allocations: 0,
        }
    }

    /// Allocates a register for an eliminated load's value.
    pub fn alloc(&mut self) -> Option<XprfSlot> {
        match self.free.pop() {
            Some(s) => {
                self.allocations += 1;
                Some(XprfSlot(s))
            }
            None => {
                self.full_misses += 1;
                None
            }
        }
    }

    /// Frees a register at retirement (or squash) of its eliminated load.
    ///
    /// # Panics
    /// Panics on double-free in debug builds.
    pub fn free(&mut self, slot: XprfSlot) {
        debug_assert!(
            !self.free.contains(&slot.0),
            "xPRF double free of slot {}",
            slot.0
        );
        self.free.push(slot.0);
    }

    /// Registers currently in use.
    pub fn in_use(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Encodes the free list in exact pop order plus the counters — the
    /// order decides which slot the next `alloc` hands out, so preserving
    /// it bit-exactly is required for deterministic resume.
    pub(crate) fn encode(&self, e: &mut Enc) {
        let Xprf {
            free,
            capacity,
            full_misses,
            allocations,
        } = self;
        e.usize(*capacity);
        e.seq_len(free.len());
        for &s in free {
            e.u8(s);
        }
        e.u64(*full_misses);
        e.u64(*allocations);
    }

    /// Decodes a file written by [`Xprf::encode`].
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let capacity = d.usize()?;
        let n = d.seq_len()?;
        let mut free = Vec::with_capacity(capacity.max(n));
        for _ in 0..n {
            free.push(d.u8()?);
        }
        Ok(Xprf {
            free,
            capacity,
            full_misses: d.u64()?,
            allocations: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut x = Xprf::new(2);
        let a = x.alloc().unwrap();
        let b = x.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(x.in_use(), 2);
        assert!(x.alloc().is_none(), "full file refuses");
        assert_eq!(x.full_misses, 1);
        x.free(a);
        assert!(x.alloc().is_some());
    }

    #[test]
    fn all_slots_distinct() {
        let mut x = Xprf::new(32);
        let mut seen = std::collections::HashSet::new();
        while let Some(s) = x.alloc() {
            assert!(seen.insert(s.0));
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    #[cfg(debug_assertions)] // the guard is a debug_assert
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut x = Xprf::new(4);
        let s = x.alloc().unwrap();
        x.free(s);
        x.free(s);
    }
}
