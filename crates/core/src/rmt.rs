//! Register Monitor Table (RMT) — §6.1, §6.4.2.
//!
//! An architectural-register-indexed table; each entry holds the PCs of
//! currently-eliminated loads that use the register as a source. A write to
//! the register drains the list and resets each PC's `can_eliminate` in the
//! SLD (Condition 1 enforcement).

use crate::config::ConstableConfig;
use sim_isa::{ArchReg, CodecError, Dec, Enc};

/// The Register Monitor Table.
#[derive(Debug, Clone)]
pub struct Rmt {
    lists: Vec<Vec<u64>>,
    stack_depth: usize,
    other_depth: usize,
}

impl Rmt {
    /// Creates an RMT sized per the configuration (16-deep for RSP/RBP,
    /// 8-deep for the other registers in the paper).
    pub fn new(cfg: &ConstableConfig) -> Self {
        Rmt {
            lists: vec![Vec::new(); ArchReg::NUM_APX],
            stack_depth: cfg.rmt_stack_depth,
            other_depth: cfg.rmt_other_depth,
        }
    }

    fn depth(&self, reg: ArchReg) -> usize {
        if reg.is_stack_reg() {
            self.stack_depth
        } else {
            self.other_depth
        }
    }

    /// Inserts `load_pc` into `reg`'s monitor list (Fig 8 step 4).
    ///
    /// Returns the PC evicted to make room, if the list was full — the
    /// caller must reset that PC's elimination state, since its register is
    /// no longer monitored.
    pub fn insert(&mut self, reg: ArchReg, load_pc: u64) -> Option<u64> {
        let depth = self.depth(reg);
        let list = &mut self.lists[reg.index()];
        if list.contains(&load_pc) {
            return None;
        }
        let evicted = if list.len() >= depth {
            Some(list.remove(0))
        } else {
            None
        };
        list.push(load_pc);
        evicted
    }

    /// Drains the list for `reg` on a write to it (Fig 8 steps 7–8),
    /// returning every load PC whose elimination must be reset.
    pub fn drain(&mut self, reg: ArchReg) -> Vec<u64> {
        std::mem::take(&mut self.lists[reg.index()])
    }

    /// Removes `load_pc` from every list (load disarmed by another path).
    pub fn purge(&mut self, load_pc: u64) {
        for list in &mut self.lists {
            list.retain(|&pc| pc != load_pc);
        }
    }

    /// Clears all lists (context switch, §6.7.3).
    pub fn clear(&mut self) {
        self.lists.iter_mut().for_each(Vec::clear);
    }

    /// Number of PCs currently monitored under `reg` (for tests/stats).
    pub fn len(&self, reg: ArchReg) -> usize {
        self.lists[reg.index()].len()
    }

    /// Whether nothing is monitored at all.
    pub fn is_empty(&self) -> bool {
        self.lists.iter().all(Vec::is_empty)
    }

    /// Encodes the monitor lists for a checkpoint (depths from the config).
    pub(crate) fn encode(&self, e: &mut Enc) {
        let Rmt {
            lists,
            stack_depth: _,
            other_depth: _,
        } = self;
        for list in lists {
            e.seq_len(list.len());
            for &pc in list {
                e.u64(pc);
            }
        }
    }

    /// Decodes lists written by [`Rmt::encode`] under the same config.
    pub(crate) fn decode(cfg: &ConstableConfig, d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut r = Rmt::new(cfg);
        for list in r.lists.iter_mut() {
            let n = d.seq_len()?;
            list.reserve(n);
            for _ in 0..n {
                list.push(d.u64()?);
            }
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmt() -> Rmt {
        Rmt::new(&ConstableConfig::paper())
    }

    #[test]
    fn drain_returns_monitored_pcs() {
        let mut r = rmt();
        r.insert(ArchReg::RAX, 0x400);
        r.insert(ArchReg::RAX, 0x500);
        let drained = r.drain(ArchReg::RAX);
        assert_eq!(drained, vec![0x400, 0x500]);
        assert_eq!(r.len(ArchReg::RAX), 0);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut r = rmt();
        r.insert(ArchReg::RCX, 0x400);
        r.insert(ArchReg::RCX, 0x400);
        assert_eq!(r.len(ArchReg::RCX), 1);
    }

    #[test]
    fn stack_registers_have_deeper_lists() {
        let mut r = rmt();
        for i in 0..20u64 {
            r.insert(ArchReg::RSP, 0x400 + i * 4);
            r.insert(ArchReg::RAX, 0x400 + i * 4);
        }
        assert_eq!(r.len(ArchReg::RSP), 16);
        assert_eq!(r.len(ArchReg::RAX), 8);
    }

    #[test]
    fn overflow_evicts_oldest_and_reports_it() {
        let mut r = rmt();
        let mut evicted = Vec::new();
        for i in 0..10u64 {
            if let Some(pc) = r.insert(ArchReg::RDX, 0x400 + i * 4) {
                evicted.push(pc);
            }
        }
        assert_eq!(
            evicted,
            vec![0x400, 0x404],
            "oldest two evicted from 8-deep list"
        );
    }

    #[test]
    fn purge_removes_pc_everywhere() {
        let mut r = rmt();
        r.insert(ArchReg::RAX, 0x400);
        r.insert(ArchReg::RBX, 0x400);
        r.purge(0x400);
        assert!(r.is_empty());
    }
}
