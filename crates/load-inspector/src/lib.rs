//! # load-inspector — global-stable load analysis
//!
//! The Rust equivalent of the paper's open-sourced binary-instrumentation
//! tool (§4.1–4.2, <https://github.com/CMU-SAFARI/Load-Inspector>): it runs
//! a workload functionally and identifies **global-stable loads** — static
//! load instructions whose every dynamic instance fetches the same value
//! from the same address across the whole trace — plus their addressing-mode
//! and inter-occurrence-distance distributions (Fig 3), and the APX
//! (32-register) study of Appendix B (Figs 23–24).
//!
//! ```
//! use load_inspector::analyze;
//! use sim_workload::suite_subset;
//!
//! let spec = &suite_subset(1)[0];
//! let program = spec.build();
//! let report = analyze(&program, 50_000);
//! assert!(report.stable_dynamic_frac() > 0.0);
//! ```

use sim_isa::AddrMode;
use sim_workload::{Machine, Program};

/// Inter-occurrence distance buckets used by the paper (Fig 3c/d).
pub const DISTANCE_BUCKETS: [u64; 3] = [50, 100, 250];

#[derive(Debug, Clone)]
struct PcRecord {
    pc: u64,
    mode: AddrMode,
    count: u64,
    addr: u64,
    value: u64,
    stable: bool,
    last_seq: u64,
    /// Distances between successive instances, bucketed per the paper.
    dist_counts: [u64; 4],
}

/// Analysis result over one workload trace.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Dynamic instructions analyzed.
    pub total_instructions: u64,
    /// Dynamic loads observed.
    pub total_loads: u64,
    /// Dynamic instances of global-stable static loads.
    pub stable_dynamic: u64,
    /// Dynamic global-stable instances per addressing mode
    /// (PC-relative, stack-relative, register-relative).
    pub stable_by_mode: [u64; 3],
    /// Inter-occurrence distance histogram of global-stable instances,
    /// bucketed `[0,50) [50,100) [100,250) 250+`.
    pub stable_distance: [u64; 4],
    /// Distance histogram per addressing mode (Fig 3d).
    pub distance_by_mode: [[u64; 4]; 3],
    /// The global-stable static load PCs (feeds [`constable::IdealOracle`]).
    pub stable_pcs: Vec<u64>,
    /// Static loads observed at least once.
    pub static_loads: u64,
    /// Per-PC detail: (pc, mode, dynamic count, global-stable).
    pub pc_details: Vec<(u64, AddrMode, u64, bool)>,
}

impl LoadReport {
    /// Fraction of all dynamic loads that are global-stable (Fig 3a).
    pub fn stable_dynamic_frac(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.stable_dynamic as f64 / self.total_loads as f64
        }
    }

    /// Dynamic loads per kilo-instruction (the APX study's load-reduction
    /// metric, Fig 23).
    pub fn loads_per_kinst(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.total_loads as f64 * 1000.0 / self.total_instructions as f64
        }
    }

    /// Fraction of global-stable instances using each addressing mode
    /// (Fig 3b): `[PC-relative, stack-relative, register-relative]`.
    pub fn mode_fracs(&self) -> [f64; 3] {
        let t = self.stable_dynamic.max(1) as f64;
        self.stable_by_mode.map(|c| c as f64 / t)
    }

    /// Fraction of global-stable instances per distance bucket (Fig 3c).
    pub fn distance_fracs(&self) -> [f64; 4] {
        let t: u64 = self.stable_distance.iter().sum();
        self.stable_distance.map(|c| c as f64 / t.max(1) as f64)
    }

    /// Distance-bucket fractions for one addressing mode (Fig 3d).
    pub fn distance_fracs_for_mode(&self, mode: AddrMode) -> [f64; 4] {
        let i = AddrMode::ALL
            .iter()
            .position(|&m| m == mode)
            .expect("known mode");
        let t: u64 = self.distance_by_mode[i].iter().sum();
        self.distance_by_mode[i].map(|c| c as f64 / t.max(1) as f64)
    }
}

fn bucket_of(distance: u64) -> usize {
    DISTANCE_BUCKETS.partition_point(|&b| b <= distance)
}

/// Runs `program` functionally for `n` instructions and reports its
/// global-stable load characteristics.
pub fn analyze(program: &Program, n: u64) -> LoadReport {
    let mut machine = Machine::new(program);
    // Indexed by static-instruction index: the trace revisits the same
    // static loads n/|program| times each, so a direct slot beats hashing
    // the sidx on every dynamic load of the analysis pass.
    let mut per_pc: Vec<Option<PcRecord>> = vec![None; program.len()];
    let mut total_loads = 0u64;

    for _ in 0..n {
        let rec = machine.step();
        let inst = program.inst(rec.sidx);
        if !inst.is_load() {
            continue;
        }
        total_loads += 1;
        let acc = rec.mem.expect("loads access memory");
        let entry = per_pc[rec.sidx as usize].get_or_insert_with(|| PcRecord {
            pc: inst.pc.0,
            mode: inst.addr_mode().expect("loads have an addressing mode"),
            count: 0,
            addr: acc.addr,
            value: acc.value,
            stable: true,
            last_seq: rec.seq,
            dist_counts: [0; 4],
        });
        if entry.count > 0 {
            if entry.addr != acc.addr || entry.value != acc.value {
                entry.stable = false;
            }
            let dist = rec.seq - entry.last_seq;
            entry.dist_counts[bucket_of(dist)] += 1;
        }
        entry.count += 1;
        entry.last_seq = rec.seq;
    }

    let seen: Vec<&PcRecord> = per_pc.iter().flatten().collect();
    let mut report = LoadReport {
        total_instructions: n,
        total_loads,
        stable_dynamic: 0,
        stable_by_mode: [0; 3],
        stable_distance: [0; 4],
        distance_by_mode: [[0; 4]; 3],
        stable_pcs: Vec::new(),
        static_loads: seen.len() as u64,
        pc_details: Vec::new(),
    };
    for rec in seen {
        let qualifies = rec.stable && rec.count >= 2;
        report
            .pc_details
            .push((rec.pc, rec.mode, rec.count, qualifies));
        // "Repeatedly fetch": a single execution does not qualify.
        if !qualifies {
            continue;
        }
        report.stable_dynamic += rec.count;
        let mode_idx = AddrMode::ALL
            .iter()
            .position(|&m| m == rec.mode)
            .expect("known mode");
        report.stable_by_mode[mode_idx] += rec.count;
        for (b, &c) in rec.dist_counts.iter().enumerate() {
            report.stable_distance[b] += c;
            report.distance_by_mode[mode_idx][b] += c;
        }
        report.stable_pcs.push(rec.pc);
    }
    report.stable_pcs.sort_unstable();
    report.pc_details.sort_unstable_by_key(|d| d.0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{AluOp, ArchReg, CondCode, MemRef};
    use sim_workload::ProgramBuilder;

    /// A program with one provably stable load and one provably unstable.
    fn two_load_program() -> Program {
        let mut b = ProgramBuilder::new("t");
        let g = b.alloc_global(7);
        let arr = b.alloc_region(16);
        for i in 0..16 {
            b.init_u64(arr + i * 8, i);
        }
        b.set_entry();
        b.movi(ArchReg::RCX, 0);
        let top = b.bind_new_label();
        b.load_rip(ArchReg::RAX, g); // stable: same addr, same value forever
        b.alui(AluOp::And, ArchReg::RDX, ArchReg::RCX, 15);
        b.lea(ArchReg::R8, MemRef::rip(arr));
        b.load(
            ArchReg::R9,
            MemRef::base_index(ArchReg::R8, ArchReg::RDX, 8, 0),
        ); // unstable
        b.alui(AluOp::Add, ArchReg::RCX, ArchReg::RCX, 1);
        b.br_imm(CondCode::Lt, ArchReg::RCX, 1 << 30, top);
        b.build()
    }

    #[test]
    fn identifies_stable_and_unstable_loads() {
        let p = two_load_program();
        let r = analyze(&p, 6_000);
        assert_eq!(r.static_loads, 2);
        assert_eq!(r.stable_pcs.len(), 1, "exactly one global-stable load");
        // Both loads execute once per iteration: stable fraction ≈ 50%.
        let f = r.stable_dynamic_frac();
        assert!((0.45..0.55).contains(&f), "stable frac {f}");
    }

    #[test]
    fn stable_load_mode_attribution() {
        let p = two_load_program();
        let r = analyze(&p, 6_000);
        let fracs = r.mode_fracs();
        assert!(fracs[0] > 0.99, "the stable load is PC-relative: {fracs:?}");
    }

    #[test]
    fn distance_buckets_match_loop_length() {
        let p = two_load_program();
        let r = analyze(&p, 6_000);
        let d = r.distance_fracs();
        assert!(
            d[0] > 0.99,
            "6-instruction loop → all distances in [0,50): {d:?}"
        );
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(49), 0);
        assert_eq!(bucket_of(50), 1);
        assert_eq!(bucket_of(100), 2);
        assert_eq!(bucket_of(249), 2);
        assert_eq!(bucket_of(250), 3);
        assert_eq!(bucket_of(100_000), 3);
    }

    #[test]
    fn suite_traces_have_paper_shaped_stable_fractions() {
        // Spot-check one workload per category at modest length.
        for spec in sim_workload::suite_subset(5) {
            let p = spec.build();
            let r = analyze(&p, 60_000);
            let f = r.stable_dynamic_frac();
            assert!(
                (0.05..0.90).contains(&f),
                "{}: stable fraction {f:.3} out of plausible range",
                spec.name
            );
        }
    }
}
